//! Tournament (loser-tree) k-way merge with offset-value coding, batched.
//!
//! The standard structure for merging many sorted runs: each output row
//! costs one leaf-to-root path of ⌈log₂ n⌉ duels, independent of how many
//! sources are exhausted. Sources are [`RowSource`]s — rows arrive in
//! block-granular [`RowBatch`]es whose pre-computed normalized-prefix
//! column doubles as the duel code column, and [`LoserTree::merge_into`]
//! drains the tree a batch at a time so refill and error checks are
//! amortized per batch instead of per row.
//!
//! With offset-value coding enabled (the default), each source's head row
//! carries an [`Ovc`] relative to the key it last lost a duel to. The
//! invariant that makes single-integer duels sound: along the winner's
//! leaf-to-root path, every parked loser's code is relative to the
//! departing winner — exactly the base the refilled head's fresh code is
//! taken against. When two codes differ, the smaller sorts earlier and the
//! loser's existing code is already correct relative to the new winner
//! (the classic OVC theorem); only equal codes fall back further.
//!
//! The batch prefix column makes both the fallback and the refill
//! derivation branch-light. Normalized encodings are prefix-free across
//! distinct keys, so when two 8-byte prefixes differ, the first differing
//! byte is the keys' first normalized difference — `offset` is the xor's
//! leading-zero byte count and `value` is the loser's byte there, exactly
//! the code a byte-level [`ovc_resolve`] would build. Keys whose whole
//! normalized form fits the prefix ([`SortKey::norm_prefix_is_exact`]:
//! the integers, `F64Key`) therefore never touch key bytes at all; only
//! wide keys whose prefixes tie fall back to comparing full normalized
//! suffixes, and those norms are (re-)encoded lazily. Duels decided on
//! codes or prefixes alone count into `ovc_cmps`; byte-level resolutions
//! count into `full_cmps`.
//!
//! Codes are derived within one tree only — batch boundaries never cross
//! an OVC seam, because a refilled head's code is always taken against the
//! row that just departed the same source, regardless of which batch
//! either row arrived in.

use histok_types::{
    norm_cmp, ovc_resolve, Aggregator, Ovc, Result, Row, RowBatch, SortKey, SortOrder,
};

use crate::cmp_stats::CmpStats;
use crate::fold::FoldSpec;
use crate::source::{RowSource, DEFAULT_BATCH_ROWS};

/// Builds the loser's code against the winner from two differing
/// output-order prefixes. Sound because normalized encodings are
/// prefix-free: the first differing padded byte is a real byte of both
/// keys, and the complement applied for descending order cancels in the
/// xor while its padding (0xFF) matches the descending sentinel.
#[inline]
fn prefix_ovc(winner: u64, loser: u64) -> Ovc {
    debug_assert!(winner < loser);
    let at = ((winner ^ loser).leading_zeros() >> 3) as usize;
    Ovc::pack(at, (loser >> (56 - 8 * at)) as u8)
}

/// A partially consumed batch parked between a source and its head slot.
struct Pending<K> {
    rows: std::vec::IntoIter<Row<K>>,
    prefixes: std::vec::IntoIter<u64>,
}

impl<K: SortKey> Pending<K> {
    fn empty() -> Self {
        Pending { rows: Vec::new().into_iter(), prefixes: Vec::new().into_iter() }
    }

    fn from_batch(batch: RowBatch<K>) -> Self {
        Pending { rows: batch.rows.into_iter(), prefixes: batch.prefixes.into_iter() }
    }

    #[inline]
    fn next(&mut self) -> Option<(Row<K>, u64)> {
        match (self.rows.next(), self.prefixes.next()) {
            (Some(row), Some(prefix)) => Some((row, prefix)),
            _ => None,
        }
    }
}

/// Pulls the next `(row, raw_prefix)` from `source`, refilling the parked
/// batch as needed. A source error is latched into `pending_error` (first
/// one wins) and reads as exhaustion — the tree surfaces it between rows.
fn pull_from<K: SortKey, S: RowSource<K>>(
    source: &mut S,
    pending: &mut Pending<K>,
    target: usize,
    pending_error: &mut Option<histok_types::Error>,
) -> Option<(Row<K>, u64)> {
    loop {
        if let Some(pair) = pending.next() {
            return Some(pair);
        }
        match source.next_batch(target) {
            Ok(Some(batch)) => {
                if !batch.is_empty() {
                    *pending = Pending::from_batch(batch);
                }
            }
            Ok(None) => return None,
            Err(e) => {
                if pending_error.is_none() {
                    *pending_error = Some(e);
                }
                return None;
            }
        }
    }
}

/// A k-way merging iterator over sorted sources.
///
/// Ties between sources break toward the lower source index, making the
/// merge stable with respect to source order.
///
/// ```
/// use histok_sort::{IterSource, LoserTree};
/// use histok_types::{Result, Row, SortOrder};
///
/// let runs: Vec<Vec<u64>> = vec![vec![1, 4, 7], vec![2, 5, 8], vec![3, 6, 9]];
/// let sources: Vec<_> = runs
///     .into_iter()
///     .map(|r| r.into_iter().map(|k| Ok(Row::key_only(k))).collect::<Vec<Result<_>>>())
///     .map(|rows| IterSource::new(rows.into_iter()))
///     .collect();
/// let merged: Vec<u64> = LoserTree::new(sources, SortOrder::Ascending)?
///     .map(|r| r.map(|row| row.key))
///     .collect::<Result<_>>()?;
/// assert_eq!(merged, (1..=9).collect::<Vec<_>>());
/// # Ok::<(), histok_types::Error>(())
/// ```
pub struct LoserTree<K: SortKey, S: RowSource<K>> {
    sources: Vec<S>,
    /// Partially consumed batch per source, drained before pulling again.
    pending: Vec<Pending<K>>,
    /// `tree[t]` = loser (source index) parked at internal node `t`;
    /// nodes `1..n`, node 0 unused.
    tree: Vec<usize>,
    /// Head row of each source (`None` = exhausted).
    heads: Vec<Option<Row<K>>>,
    /// Output-order normalized prefix of each head (`raw ^ out_mask`;
    /// stale when the head is `None`).
    head_prefixes: Vec<u64>,
    /// XOR mask mapping raw (ascending) prefixes into output order:
    /// 0 ascending, `!0` descending.
    out_mask: u64,
    /// Full normalized bytes of each head — maintained lazily, only for
    /// key types whose prefix is not exact (see `norm_valid`).
    norms: Vec<Vec<u8>>,
    /// Whether `norms[i]` currently encodes `heads[i]`.
    norm_valid: Vec<bool>,
    /// Each head's code relative to the key it last lost to.
    ovcs: Vec<Ovc>,
    /// Scratch for encoding a refilled head before swapping into `norms`.
    scratch: Vec<u8>,
    winner: usize,
    order: SortOrder,
    ovc_enabled: bool,
    /// Batch-size hint passed to the sources on refill.
    batch_target: usize,
    /// Duels decided by comparing two codes or two prefixes (one integer
    /// compare each).
    ovc_cmps: u64,
    /// Byte-level key resolutions (wide-key prefix ties).
    full_cmps: u64,
    /// Batches emitted through [`LoserTree::merge_into`].
    batches_out: u64,
    /// Shared sink the local counters flush into on drop.
    stats: Option<CmpStats>,
    /// Fold mode: equal-key rows are combined at emission instead of both
    /// being produced (see [`LoserTree::set_fold`]).
    fold: Option<FoldSpec>,
    /// Duplicate rows absorbed by folding; flushed to the spec's
    /// [`crate::FoldStats`] on drop.
    rows_folded: u64,
    /// First error from any source; returned once, then the tree is done.
    pending_error: Option<histok_types::Error>,
    done: bool,
}

impl<K: SortKey, S: RowSource<K>> LoserTree<K, S> {
    /// Builds a merge over `sources`, each already sorted in `order`, with
    /// offset-value coding enabled and no stats sink.
    pub fn new(sources: Vec<S>, order: SortOrder) -> Result<Self> {
        Self::with_ovc(sources, order, true, None)
    }

    /// Builds a merge with explicit control over offset-value coding and
    /// an optional shared comparison-counter sink (flushed on drop).
    pub fn with_ovc(
        mut sources: Vec<S>,
        order: SortOrder,
        ovc_enabled: bool,
        stats: Option<CmpStats>,
    ) -> Result<Self> {
        let n = sources.len();
        let out_mask = match order {
            SortOrder::Ascending => 0,
            SortOrder::Descending => !0u64,
        };
        let mut pending: Vec<Pending<K>> = (0..n).map(|_| Pending::empty()).collect();
        let mut heads = Vec::with_capacity(n);
        let mut head_prefixes = vec![0u64; n];
        let mut pending_error = None;
        for (i, s) in sources.iter_mut().enumerate() {
            match pull_from(s, &mut pending[i], DEFAULT_BATCH_ROWS, &mut pending_error) {
                Some((row, raw)) => {
                    head_prefixes[i] = raw ^ out_mask;
                    heads.push(Some(row));
                }
                None => heads.push(None),
            }
        }
        let mut lt = LoserTree {
            sources,
            pending,
            tree: vec![usize::MAX; n.max(1)],
            heads,
            head_prefixes,
            out_mask,
            norms: vec![Vec::new(); n],
            norm_valid: vec![false; n],
            ovcs: vec![Ovc::EQUAL; n],
            scratch: Vec::new(),
            winner: 0,
            order,
            ovc_enabled,
            batch_target: DEFAULT_BATCH_ROWS,
            ovc_cmps: 0,
            full_cmps: 0,
            batches_out: 0,
            stats,
            fold: None,
            rows_folded: 0,
            pending_error,
            done: n == 0,
        };
        if n > 0 {
            lt.rebuild();
        }
        Ok(lt)
    }

    /// Overrides the batch-size hint passed to sources on refill
    /// (default [`DEFAULT_BATCH_ROWS`]; clamped to at least 1).
    pub fn set_batch_target(&mut self, rows: usize) {
        self.batch_target = rows.max(1);
    }

    /// Comparison counts so far as `(ovc_cmps, full_cmps)`.
    pub fn cmp_counts(&self) -> (u64, u64) {
        (self.ovc_cmps, self.full_cmps)
    }

    /// Enables (or disables) duplicate folding: successive equal-key rows
    /// are combined into one output row, their payloads merged by the
    /// spec's aggregator. The double-EQUAL tie-break path already
    /// identifies equal keys without touching key bytes, so folding adds
    /// no comparisons for exact-prefix key types.
    pub fn set_fold(&mut self, fold: Option<FoldSpec>) {
        self.fold = fold;
    }

    /// Duplicate rows absorbed by folding so far.
    pub fn rows_folded(&self) -> u64 {
        self.rows_folded
    }

    /// Re-encodes `norms[i]` from the current head if it is stale.
    fn ensure_norm(&mut self, i: usize) {
        if !self.norm_valid[i] {
            self.norms[i].clear();
            if let Some(row) = &self.heads[i] {
                row.key.norm_encode(&mut self.norms[i]);
            }
            self.norm_valid[i] = true;
        }
    }

    /// Decides a duel between sources `a` and `b`, returning the winner
    /// (the source whose head is emitted first) and reseating the loser's
    /// code relative to the winner when codes alone could not decide.
    ///
    /// `fresh` requests an unconditional resolution — used while
    /// (re)building the tournament, when the two heads' codes are not yet
    /// relative to a common base.
    fn duel(&mut self, a: usize, b: usize, fresh: bool) -> usize {
        match (&self.heads[a], &self.heads[b]) {
            (Some(ra), Some(rb)) => {
                if !self.ovc_enabled {
                    self.full_cmps += 1;
                    return match self.order.cmp_keys(&ra.key, &rb.key) {
                        std::cmp::Ordering::Less => a,
                        std::cmp::Ordering::Greater => b,
                        std::cmp::Ordering::Equal => a.min(b),
                    };
                }
                if K::norm_prefix_is_exact() {
                    // Exact-prefix keys: the output-order prefix *is* the
                    // whole key, so one integer duel on the flat prefix
                    // column decides — cheaper than both code maintenance
                    // (no derivation on refill) and a full comparison (no
                    // `Row` dereference). Codes are not maintained for
                    // these key types; see `refill_winner`.
                    self.ovc_cmps += 1;
                    let (pa, pb) = (self.head_prefixes[a], self.head_prefixes[b]);
                    return match pa.cmp(&pb) {
                        std::cmp::Ordering::Less => a,
                        std::cmp::Ordering::Greater => b,
                        std::cmp::Ordering::Equal => a.min(b),
                    };
                }
                if !fresh {
                    let (ca, cb) = (self.ovcs[a], self.ovcs[b]);
                    if ca != cb {
                        // Codes against a common base differ: the smaller
                        // sorts earlier, and the loser's code is already
                        // correct relative to the new winner.
                        self.ovc_cmps += 1;
                        return if ca < cb { a } else { b };
                    }
                    if ca == Ovc::EQUAL {
                        // Both heads equal the common base, hence each
                        // other: stable tie-break, codes stay EQUAL.
                        self.ovc_cmps += 1;
                        return a.min(b);
                    }
                    // Tied non-trivial codes: the heads agree through the
                    // coded offset; resolve on the prefixes / suffixes.
                    let from = ca.offset().map_or(0, |o| o + 1);
                    return self.duel_resolve(a, b, from);
                }
                self.duel_resolve(a, b, 0)
            }
            (Some(_), None) => a,
            (None, Some(_)) => b,
            (None, None) => a.min(b),
        }
    }

    /// Resolves a duel the codes could not decide: on the prefix column
    /// when the prefixes differ (one integer compare, and the loser's
    /// code falls out of the xor), otherwise on the full normalized keys
    /// from byte `from`.
    fn duel_resolve(&mut self, a: usize, b: usize, from: usize) -> usize {
        let (oa, ob) = (self.head_prefixes[a], self.head_prefixes[b]);
        if oa != ob {
            self.ovc_cmps += 1;
            return if oa < ob {
                self.ovcs[b] = prefix_ovc(oa, ob);
                a
            } else {
                self.ovcs[a] = prefix_ovc(ob, oa);
                b
            };
        }
        if K::norm_prefix_is_exact() {
            // The whole normalized key fits the prefix: equal prefixes are
            // equal keys. Stable tie-break; the loser is byte-identical to
            // the winner, so its code against the winner is EQUAL. The
            // winner keeps its code (still relative to its previous base).
            self.ovc_cmps += 1;
            let (w, l) = if a < b { (a, b) } else { (b, a) };
            self.ovcs[l] = Ovc::EQUAL;
            return w;
        }
        // Wide keys agreeing through the prefix: compare the normalized
        // suffixes. Equal prefixes guarantee agreement through byte
        // min(8, len) (prefix-free encodings), so the scan starts there.
        self.ensure_norm(a);
        self.ensure_norm(b);
        let from = from.max(8);
        if from >= self.norms[a].len() && from >= self.norms[b].len() {
            // Both normalized strings end at or before the scan start, so
            // the resolve touches zero key bytes (prefix-freeness makes
            // the keys equal): this duel was decided on the prefix/OVC
            // column alone and books as an OVC comparison.
            self.ovc_cmps += 1;
        } else {
            self.full_cmps += 1;
        }
        let res = ovc_resolve(&self.norms[a], &self.norms[b], from, self.order);
        match res.ordering {
            std::cmp::Ordering::Less => {
                self.ovcs[b] = res.loser_ovc;
                a
            }
            std::cmp::Ordering::Greater => {
                self.ovcs[a] = res.loser_ovc;
                b
            }
            std::cmp::Ordering::Equal => {
                let (w, l) = if a < b { (a, b) } else { (b, a) };
                self.ovcs[l] = Ovc::EQUAL;
                w
            }
        }
    }

    /// Full bottom-up tournament; O(n). Every duel resolves fully so each
    /// parked loser's code ends up relative to the winner it lost to.
    fn rebuild(&mut self) {
        let n = self.sources.len();
        if n == 1 {
            self.winner = 0;
            return;
        }
        // winner_at[t] for internal nodes 1..n; leaves are n..2n.
        let mut winner_at = vec![usize::MAX; 2 * n];
        for (i, slot) in winner_at.iter_mut().enumerate().take(2 * n).skip(n) {
            *slot = i - n;
        }
        for t in (1..n).rev() {
            let a = winner_at[2 * t];
            let b = winner_at[2 * t + 1];
            let w = self.duel(a, b, true);
            winner_at[t] = w;
            self.tree[t] = if w == a { b } else { a };
        }
        self.winner = winner_at[1];
    }

    /// Replays the tournament along the winner's path after its head
    /// changed; O(log n). Parked losers along this path last lost to the
    /// departed winner — the same base the climber's code was derived
    /// against — so code-only duels are sound.
    fn adjust(&mut self) {
        let n = self.sources.len();
        if n == 1 {
            return;
        }
        let mut s = self.winner;
        let mut t = (s + n) / 2;
        while t > 0 {
            let w = self.duel(self.tree[t], s, false);
            if w == self.tree[t] {
                std::mem::swap(&mut s, &mut self.tree[t]);
            }
            t /= 2;
        }
        self.winner = s;
    }

    /// Refills the winner's head from its source, deriving the new head's
    /// code against `departed` (its run predecessor). With prefix codes
    /// the derivation is a xor and a shift; only wide keys whose prefixes
    /// tie re-encode and scan normalized bytes.
    fn refill_winner(&mut self, departed: &Row<K>) {
        let i = self.winner;
        let prev_out = self.head_prefixes[i];
        let pulled = pull_from(
            &mut self.sources[i],
            &mut self.pending[i],
            self.batch_target,
            &mut self.pending_error,
        );
        match pulled {
            Some((row, raw)) => {
                let out = raw ^ self.out_mask;
                if self.ovc_enabled {
                    if K::norm_prefix_is_exact() {
                        // Duels on exact keys read the prefix column
                        // directly (see `duel`); no code to derive.
                        debug_assert!(prev_out <= out, "source not sorted in the requested order");
                    } else if out != prev_out {
                        debug_assert!(prev_out < out, "source not sorted in the requested order");
                        self.ovc_cmps += 1;
                        self.ovcs[i] = prefix_ovc(prev_out, out);
                        self.norm_valid[i] = false;
                    } else {
                        // Prefix tie on a wide key: resolve on the full
                        // normalized bytes. The departed row's norm may
                        // never have been encoded (it is kept lazily);
                        // rebuild the base from the row itself.
                        if !self.norm_valid[i] {
                            self.norms[i].clear();
                            departed.key.norm_encode(&mut self.norms[i]);
                        }
                        self.scratch.clear();
                        row.key.norm_encode(&mut self.scratch);
                        debug_assert!(
                            norm_cmp(&self.norms[i], &self.scratch, self.order)
                                != std::cmp::Ordering::Greater,
                            "source not sorted in the requested order"
                        );
                        if self.norms[i].len() <= 8 && self.scratch.len() <= 8 {
                            // Equal keys recognized without scanning a
                            // byte (see `duel_resolve`).
                            self.ovc_cmps += 1;
                        } else {
                            self.full_cmps += 1;
                        }
                        self.ovcs[i] =
                            ovc_resolve(&self.norms[i], &self.scratch, 8, self.order).loser_ovc;
                        std::mem::swap(&mut self.norms[i], &mut self.scratch);
                        self.norm_valid[i] = true;
                    }
                }
                self.heads[i] = Some(row);
                self.head_prefixes[i] = out;
            }
            None => {
                self.heads[i] = None;
            }
        }
        self.adjust();
    }

    /// Absorbs every successive winning head equal to `row`'s key into
    /// `row`'s payload (fold mode). Runs until the winning key changes or
    /// the sources drain, so a fold never straddles a batch boundary and
    /// every emitted key is distinct. Equality rides the duel machinery's
    /// invariants: with coding enabled, equal output-order prefixes plus
    /// an exact prefix (or a confirming key compare for wide keys) mean
    /// equal keys.
    fn fold_equal_heads(&mut self, agg: &dyn Aggregator, row: &mut Row<K>, out_prefix: u64) {
        while self.pending_error.is_none() {
            let w = self.winner;
            let equal = match &self.heads[w] {
                Some(h) => {
                    if self.ovc_enabled {
                        self.head_prefixes[w] == out_prefix
                            && (K::norm_prefix_is_exact() || h.key == row.key)
                    } else {
                        h.key == row.key
                    }
                }
                None => false,
            };
            if !equal {
                break;
            }
            let dup = self.heads[w].take().expect("head checked above");
            self.refill_winner(&dup);
            if let Some(folded) = agg.fold(&row.payload, &dup.payload) {
                row.payload = folded;
            }
            self.rows_folded += 1;
        }
    }

    /// Peeks at the key that would be produced next.
    pub fn peek_key(&self) -> Option<&K> {
        if self.done {
            return None;
        }
        self.heads[self.winner].as_ref().map(|r| &r.key)
    }

    /// Drains up to `max_rows` rows into `out` (cleared first), carrying
    /// the prefix column along so downstream consumers (cutoff filters,
    /// run writers) never recompute it.
    ///
    /// Returns `Ok` with a shorter — possibly empty — batch at end of
    /// stream; an empty batch with `max_rows > 0` means the merge is
    /// done. A source error that strikes mid-batch latches: the rows
    /// already merged come back as a short `Ok` batch and the error
    /// surfaces on the next call (exactly the iterator protocol, lifted
    /// to batches). After an error the tree is fused.
    pub fn merge_into(&mut self, out: &mut RowBatch<K>, max_rows: usize) -> Result<()> {
        out.clear();
        if self.done {
            return Ok(());
        }
        if let Some(e) = self.pending_error.take() {
            self.done = true;
            return Err(e);
        }
        let agg = self.fold.as_ref().map(|f| f.agg.clone());
        while out.len() < max_rows {
            let i = self.winner;
            match self.heads[i].take() {
                Some(mut row) => {
                    let out_prefix = self.head_prefixes[i];
                    self.refill_winner(&row);
                    if let Some(agg) = &agg {
                        self.fold_equal_heads(agg.as_ref(), &mut row, out_prefix);
                    }
                    out.push_with_prefix(row, out_prefix ^ self.out_mask);
                    if self.pending_error.is_some() {
                        break;
                    }
                }
                None => {
                    self.done = true;
                    break;
                }
            }
        }
        if !out.is_empty() {
            self.batches_out += 1;
        }
        Ok(())
    }
}

impl<K: SortKey, S: RowSource<K>> Drop for LoserTree<K, S> {
    fn drop(&mut self) {
        if let Some(stats) = &self.stats {
            stats.record(self.ovc_cmps, self.full_cmps);
            stats.record_batches(self.batches_out);
        }
        if let Some(spec) = &self.fold {
            spec.flush_merge(self.rows_folded);
        }
    }
}

impl<K: SortKey, S: RowSource<K>> Iterator for LoserTree<K, S> {
    type Item = Result<Row<K>>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        // Deferred-error protocol: an error parked by construction or by a
        // previous call's refill surfaces here, before any further rows,
        // and fuses the tree.
        if let Some(e) = self.pending_error.take() {
            self.done = true;
            return Some(Err(e));
        }
        let i = self.winner;
        match self.heads[i].take() {
            Some(mut row) => {
                // A source error hit during this refill is parked in
                // `pending_error`, not returned: the row in hand is valid
                // and must not be lost. The next call emits the error (or
                // drops it if the caller stops early — standard iterator
                // semantics).
                let out_prefix = self.head_prefixes[i];
                self.refill_winner(&row);
                if let Some(spec) = &self.fold {
                    let agg = spec.agg.clone();
                    self.fold_equal_heads(agg.as_ref(), &mut row, out_prefix);
                }
                Some(Ok(row))
            }
            None => {
                self.done = true;
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::IterSource;
    use histok_types::{BytesKey, Error, KeyPair};

    type VecSource = IterSource<std::vec::IntoIter<Result<Row<u64>>>>;

    fn src(keys: &[u64]) -> VecSource {
        IterSource::new(keys.iter().map(|&k| Ok(Row::key_only(k))).collect::<Vec<_>>().into_iter())
    }

    fn iter_src<K: SortKey>(
        rows: Vec<Result<Row<K>>>,
    ) -> IterSource<std::vec::IntoIter<Result<Row<K>>>> {
        IterSource::new(rows.into_iter())
    }

    fn merge_keys(sources: Vec<VecSource>, order: SortOrder) -> Vec<u64> {
        LoserTree::new(sources, order).unwrap().map(|r| r.unwrap().key).collect()
    }

    #[test]
    fn merges_two_sources() {
        let got = merge_keys(vec![src(&[1, 3, 5]), src(&[2, 4, 6])], SortOrder::Ascending);
        assert_eq!(got, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn single_source_passthrough() {
        let got = merge_keys(vec![src(&[1, 2, 3])], SortOrder::Ascending);
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn empty_everything() {
        let got = merge_keys(vec![], SortOrder::Ascending);
        assert!(got.is_empty());
        let got = merge_keys(vec![src(&[]), src(&[])], SortOrder::Ascending);
        assert!(got.is_empty());
    }

    #[test]
    fn uneven_sources_and_empties() {
        let got = merge_keys(
            vec![src(&[]), src(&[10]), src(&[1, 2, 3, 4, 5, 6, 7]), src(&[]), src(&[4, 8])],
            SortOrder::Ascending,
        );
        assert_eq!(got, vec![1, 2, 3, 4, 4, 5, 6, 7, 8, 10]);
    }

    #[test]
    fn descending_merge() {
        let got = merge_keys(vec![src(&[9, 5, 1]), src(&[8, 4])], SortOrder::Descending);
        assert_eq!(got, vec![9, 8, 5, 4, 1]);
    }

    #[test]
    fn many_sources_power_of_two_and_odd() {
        for n in [2usize, 3, 4, 5, 7, 8, 15, 16, 17, 33] {
            let sources: Vec<VecSource> = (0..n)
                .map(|i| {
                    let keys: Vec<u64> = (0..20).map(|j| (j * n + i) as u64).collect();
                    src(&keys)
                })
                .collect();
            let got = merge_keys(sources, SortOrder::Ascending);
            let expected: Vec<u64> = (0..(20 * n) as u64).collect();
            assert_eq!(got, expected, "n = {n}");
        }
    }

    #[test]
    fn ovc_disabled_merges_identically() {
        for n in [2usize, 3, 7, 16] {
            for order in [SortOrder::Ascending, SortOrder::Descending] {
                let make = || -> Vec<VecSource> {
                    (0..n)
                        .map(|i| {
                            let mut keys: Vec<u64> =
                                (0..30).map(|j| ((j * n + i) as u64 * 7) % 50).collect();
                            keys.sort_unstable();
                            if order == SortOrder::Descending {
                                keys.reverse();
                            }
                            src(&keys)
                        })
                        .collect()
                };
                let on: Vec<u64> = LoserTree::with_ovc(make(), order, true, None)
                    .unwrap()
                    .map(|r| r.unwrap().key)
                    .collect();
                let off: Vec<u64> = LoserTree::with_ovc(make(), order, false, None)
                    .unwrap()
                    .map(|r| r.unwrap().key)
                    .collect();
                assert_eq!(on, off, "n = {n}, order = {order:?}");
            }
        }
    }

    #[test]
    fn ovc_duels_dominate_on_disjoint_ranges() {
        // Interleaved unique keys: every adjust-path duel should resolve
        // on codes after the first refill derivation.
        let n = 8usize;
        let sources: Vec<VecSource> = (0..n)
            .map(|i| {
                let keys: Vec<u64> = (0..100).map(|j| (j * n + i) as u64).collect();
                src(&keys)
            })
            .collect();
        let stats = CmpStats::new();
        let mut lt =
            LoserTree::with_ovc(sources, SortOrder::Ascending, true, Some(stats.clone())).unwrap();
        let mut count = 0u64;
        for r in &mut lt {
            r.unwrap();
            count += 1;
        }
        let (ovc, full) = lt.cmp_counts();
        assert_eq!(count, 800);
        // u64 prefixes are exact: every duel, refill derivation and tie
        // resolves on integers — no byte-level comparison ever fires.
        assert!(ovc > full, "ovc = {ovc}, full = {full}");
        assert_eq!(full, 0, "prefix-exact keys must never fall back to bytes");
        drop(lt);
        let snap = stats.snapshot();
        assert_eq!((snap.ovc_cmps, snap.full_cmps), (ovc, full));
    }

    #[test]
    fn duplicate_heavy_all_equal_keys_stay_stable() {
        // Many sources, every key identical: output must drain sources in
        // index order (ties break toward the lower source), with each
        // source's payloads in their original sequence.
        for ovc in [true, false] {
            let n = 6usize;
            let rows_per = 5usize;
            let sources: Vec<_> = (0..n)
                .map(|i| {
                    iter_src(
                        (0..rows_per)
                            .map(|j| Ok(Row::new(42u64, format!("s{i}r{j}").into_bytes())))
                            .collect::<Vec<Result<Row<u64>>>>(),
                    )
                })
                .collect();
            let got: Vec<String> = LoserTree::with_ovc(sources, SortOrder::Ascending, ovc, None)
                .unwrap()
                .map(|r| String::from_utf8(r.unwrap().payload.to_vec()).unwrap())
                .collect();
            let expected: Vec<String> =
                (0..n).flat_map(|i| (0..rows_per).map(move |j| format!("s{i}r{j}"))).collect();
            assert_eq!(got, expected, "ovc = {ovc}");
        }
    }

    #[test]
    fn duplicate_runs_interleave_stably() {
        // Duplicates spanning sources: each tie group must list source 0's
        // rows before source 1's.
        for ovc in [true, false] {
            let a: Vec<Result<Row<u64>>> = vec![
                Ok(Row::new(1u64, &b"a0"[..])),
                Ok(Row::new(1u64, &b"a1"[..])),
                Ok(Row::new(2u64, &b"a2"[..])),
            ];
            let b: Vec<Result<Row<u64>>> = vec![
                Ok(Row::new(1u64, &b"b0"[..])),
                Ok(Row::new(2u64, &b"b1"[..])),
                Ok(Row::new(2u64, &b"b2"[..])),
            ];
            let got: Vec<(u64, Vec<u8>)> = LoserTree::with_ovc(
                vec![iter_src(a), iter_src(b)],
                SortOrder::Ascending,
                ovc,
                None,
            )
            .unwrap()
            .map(|r| r.map(|row| (row.key, row.payload.to_vec())).unwrap())
            .collect();
            let expected: Vec<(u64, Vec<u8>)> = vec![
                (1, b"a0".to_vec()),
                (1, b"a1".to_vec()),
                (1, b"b0".to_vec()),
                (2, b"a2".to_vec()),
                (2, b"b1".to_vec()),
                (2, b"b2".to_vec()),
            ];
            assert_eq!(got, expected, "ovc = {ovc}");
        }
    }

    #[test]
    fn byte_keys_with_shared_prefixes_merge_correctly() {
        for order in [SortOrder::Ascending, SortOrder::Descending] {
            let make = |words: &[&str]| {
                let mut keys: Vec<BytesKey> = words.iter().map(|w| BytesKey::from(*w)).collect();
                keys.sort();
                if order == SortOrder::Descending {
                    keys.reverse();
                }
                iter_src(keys.into_iter().map(|k| Ok(Row::key_only(k))).collect::<Vec<_>>())
            };
            let sources = vec![
                make(&["aaa", "aab", "aba", "abc"]),
                make(&["aab", "aac", "ab", "b"]),
                make(&["", "a", "aa", "aaa"]),
            ];
            let got: Vec<BytesKey> =
                LoserTree::new(sources, order).unwrap().map(|r| r.unwrap().key).collect();
            let mut expected = got.clone();
            expected.sort();
            if order == SortOrder::Descending {
                expected.reverse();
            }
            assert_eq!(got, expected, "order = {order:?}");
            assert_eq!(got.len(), 12);
        }
    }

    #[test]
    fn wide_keys_sharing_long_prefixes_resolve_beyond_the_prefix() {
        // Keys identical through well past byte 8: every duel's prefix
        // compare ties and the byte-level fallback must order them.
        for order in [SortOrder::Ascending, SortOrder::Descending] {
            let word = |suffix: &str| BytesKey::from(format!("commonprefix-{suffix}").as_str());
            let make = |suffixes: &[&str]| {
                let mut keys: Vec<BytesKey> = suffixes.iter().map(|s| word(s)).collect();
                keys.sort();
                if order == SortOrder::Descending {
                    keys.reverse();
                }
                iter_src(keys.into_iter().map(|k| Ok(Row::key_only(k))).collect::<Vec<_>>())
            };
            let sources = vec![
                make(&["alpha", "delta", "golf", "golf"]),
                make(&["bravo", "delta", "echo"]),
                make(&["charlie", "foxtrot"]),
            ];
            let got: Vec<BytesKey> =
                LoserTree::new(sources, order).unwrap().map(|r| r.unwrap().key).collect();
            let mut expected = got.clone();
            expected.sort();
            if order == SortOrder::Descending {
                expected.reverse();
            }
            assert_eq!(got, expected, "order = {order:?}");
            assert_eq!(got.len(), 9);
        }
    }

    #[test]
    fn pair_keys_merge_in_both_orders() {
        for order in [SortOrder::Ascending, SortOrder::Descending] {
            let make = |seed: u64| {
                let mut keys: Vec<KeyPair<u64, BytesKey>> = (0..20)
                    .map(|j| KeyPair((j * 7 + seed) % 13, BytesKey::from(format!("p{j}").as_str())))
                    .collect();
                keys.sort();
                if order == SortOrder::Descending {
                    keys.reverse();
                }
                iter_src(keys.into_iter().map(|k| Ok(Row::key_only(k))).collect::<Vec<_>>())
            };
            let sources = vec![make(0), make(3), make(5)];
            let got: Vec<_> =
                LoserTree::new(sources, order).unwrap().map(|r| r.unwrap().key).collect();
            let mut expected = got.clone();
            expected.sort();
            if order == SortOrder::Descending {
                expected.reverse();
            }
            assert_eq!(got, expected, "order = {order:?}");
            assert_eq!(got.len(), 60);
        }
    }

    #[test]
    fn peek_key_matches_next() {
        let mut lt = LoserTree::new(vec![src(&[5, 7]), src(&[6])], SortOrder::Ascending).unwrap();
        assert_eq!(lt.peek_key(), Some(&5));
        assert_eq!(lt.next().unwrap().unwrap().key, 5);
        assert_eq!(lt.peek_key(), Some(&6));
    }

    #[test]
    fn ties_break_toward_lower_source_index() {
        let a: Vec<Result<Row<u64>>> = vec![Ok(Row::new(5u64, &b"from-a"[..]))];
        let b: Vec<Result<Row<u64>>> = vec![Ok(Row::new(5u64, &b"from-b"[..]))];
        let mut lt = LoserTree::new(vec![iter_src(a), iter_src(b)], SortOrder::Ascending).unwrap();
        assert_eq!(lt.next().unwrap().unwrap().payload.as_ref(), b"from-a");
        assert_eq!(lt.next().unwrap().unwrap().payload.as_ref(), b"from-b");
    }

    #[test]
    fn source_error_is_surfaced_and_fuses() {
        let bad: Vec<Result<Row<u64>>> =
            vec![Ok(Row::key_only(1)), Err(Error::Corrupt("boom".into()))];
        let mut lt =
            LoserTree::new(vec![iter_src(bad), src(&[100])], SortOrder::Ascending).unwrap();
        assert_eq!(lt.next().unwrap().unwrap().key, 1);
        // The error surfaces before any further rows.
        assert!(matches!(lt.next(), Some(Err(Error::Corrupt(_)))));
        assert!(lt.next().is_none());
    }

    #[test]
    fn immediate_error_in_first_rows() {
        let bad: Vec<Result<Row<u64>>> = vec![Err(Error::Corrupt("early".into()))];
        let mut lt = LoserTree::new(vec![iter_src(bad), src(&[1])], SortOrder::Ascending).unwrap();
        assert!(matches!(lt.next(), Some(Err(_))));
        assert!(lt.next().is_none());
    }

    #[test]
    fn error_after_final_good_row_is_not_lost() {
        // The error arrives from the refill triggered by the last good
        // row: that row must still be emitted, the error next, then fused.
        let bad: Vec<Result<Row<u64>>> =
            vec![Ok(Row::key_only(7)), Err(Error::Corrupt("tail".into()))];
        let mut lt = LoserTree::new(vec![iter_src(bad)], SortOrder::Ascending).unwrap();
        assert_eq!(lt.next().unwrap().unwrap().key, 7);
        assert!(matches!(lt.next(), Some(Err(Error::Corrupt(_)))));
        assert!(lt.next().is_none());
        assert!(lt.next().is_none());

        // Same, but the erroring source outlives every other source.
        let bad: Vec<Result<Row<u64>>> =
            vec![Ok(Row::key_only(9)), Err(Error::Corrupt("tail".into()))];
        let mut lt =
            LoserTree::new(vec![src(&[1, 2]), iter_src(bad)], SortOrder::Ascending).unwrap();
        assert_eq!(lt.next().unwrap().unwrap().key, 1);
        assert_eq!(lt.next().unwrap().unwrap().key, 2);
        assert_eq!(lt.next().unwrap().unwrap().key, 9);
        assert!(matches!(lt.next(), Some(Err(Error::Corrupt(_)))));
        assert!(lt.next().is_none());
    }

    #[test]
    fn merge_into_matches_iterator_output() {
        for batch_rows in [1usize, 7, 1024] {
            let make = || vec![src(&[1, 3, 5, 7, 9, 11]), src(&[2, 4, 6, 8]), src(&[0, 10, 12])];
            let by_iter: Vec<u64> = LoserTree::new(make(), SortOrder::Ascending)
                .unwrap()
                .map(|r| r.unwrap().key)
                .collect();
            let mut lt = LoserTree::new(make(), SortOrder::Ascending).unwrap();
            let mut by_batch: Vec<u64> = Vec::new();
            let mut out = RowBatch::new();
            loop {
                lt.merge_into(&mut out, batch_rows).unwrap();
                if out.is_empty() {
                    break;
                }
                // The carried prefix column must honor the invariant.
                for (row, &p) in out.rows.iter().zip(&out.prefixes) {
                    assert_eq!(p, row.key.norm_prefix());
                }
                by_batch.extend(out.rows.iter().map(|r| r.key));
            }
            assert_eq!(by_batch, by_iter, "batch_rows = {batch_rows}");
        }
    }

    #[test]
    fn merge_into_surfaces_error_after_partial_batch() {
        let bad: Vec<Result<Row<u64>>> =
            vec![Ok(Row::key_only(1)), Ok(Row::key_only(3)), Err(Error::Corrupt("mid".into()))];
        let mut lt = LoserTree::new(vec![iter_src(bad), src(&[2])], SortOrder::Ascending).unwrap();
        let mut out = RowBatch::new();
        // First drain stops once the error latches; the rows merged before
        // it come back intact.
        lt.merge_into(&mut out, 100).unwrap();
        assert_eq!(out.rows.iter().map(|r| r.key).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert!(matches!(lt.merge_into(&mut out, 100), Err(Error::Corrupt(_))));
        assert!(out.is_empty(), "a failed drain must not leave stale rows");
        // Fused thereafter.
        lt.merge_into(&mut out, 100).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn merge_into_descending_carries_raw_prefixes() {
        let mut lt =
            LoserTree::new(vec![src(&[9, 5, 1]), src(&[8, 4])], SortOrder::Descending).unwrap();
        let mut out = RowBatch::new();
        lt.merge_into(&mut out, 16).unwrap();
        assert_eq!(out.rows.iter().map(|r| r.key).collect::<Vec<_>>(), vec![9, 8, 5, 4, 1]);
        for (row, &p) in out.rows.iter().zip(&out.prefixes) {
            assert_eq!(p, row.key.norm_prefix(), "prefix column must stay raw (ascending-order)");
        }
    }

    #[test]
    fn fold_dedup_emits_each_key_once() {
        use crate::fold::{FoldSpec, FoldStats};
        use histok_types::AggregateOp;
        for ovc in [true, false] {
            for order in [SortOrder::Ascending, SortOrder::Descending] {
                let mut a = vec![1u64, 3, 3, 5, 5, 5];
                let mut b = vec![1, 1, 3, 6];
                if order == SortOrder::Descending {
                    a.reverse();
                    b.reverse();
                }
                let stats = FoldStats::new();
                let mut lt = LoserTree::with_ovc(vec![src(&a), src(&b)], order, ovc, None).unwrap();
                lt.set_fold(Some(
                    FoldSpec::new(AggregateOp::First.aggregator()).with_stats(stats.clone()),
                ));
                let got: Vec<u64> = (&mut lt).map(|r| r.unwrap().key).collect();
                let mut expected = vec![1u64, 3, 5, 6];
                if order == SortOrder::Descending {
                    expected.reverse();
                }
                assert_eq!(got, expected, "ovc = {ovc}, order = {order:?}");
                assert_eq!(lt.rows_folded(), 6);
                drop(lt);
                assert_eq!(stats.snapshot().rows_folded, 6);
            }
        }
    }

    #[test]
    fn fold_count_totals_multiplicity_across_sources() {
        use crate::fold::FoldSpec;
        use histok_types::{decode_count, AggregateOp, Bytes};
        let agg = AggregateOp::Count.aggregator();
        let counted = |keys: &[u64]| -> Vec<Result<Row<u64>>> {
            keys.iter().map(|&k| Ok(Row::new(k, agg.init(Bytes::new())))).collect()
        };
        let mut lt = LoserTree::new(
            vec![
                iter_src(counted(&[2, 2, 7, 7, 7])),
                iter_src(counted(&[2, 9])),
                iter_src(counted(&[7])),
            ],
            SortOrder::Ascending,
        )
        .unwrap();
        lt.set_fold(Some(FoldSpec::new(agg.clone())));
        let got: Vec<(u64, u64)> =
            (&mut lt).map(|r| r.unwrap()).map(|r| (r.key, decode_count(&r.payload))).collect();
        assert_eq!(got, vec![(2, 3), (7, 4), (9, 1)]);
    }

    #[test]
    fn fold_in_merge_into_matches_iterator_and_respects_batch_bounds() {
        use crate::fold::FoldSpec;
        use histok_types::{decode_count, AggregateOp, Bytes};
        let agg = AggregateOp::Count.aggregator();
        for batch_rows in [1usize, 2, 1024] {
            let counted = |keys: &[u64]| -> Vec<Result<Row<u64>>> {
                keys.iter().map(|&k| Ok(Row::new(k, agg.init(Bytes::new())))).collect()
            };
            let mut lt = LoserTree::new(
                vec![iter_src(counted(&[1, 1, 4, 4, 4, 8])), iter_src(counted(&[1, 4, 8, 8]))],
                SortOrder::Ascending,
            )
            .unwrap();
            lt.set_fold(Some(FoldSpec::new(agg.clone())));
            let mut got: Vec<(u64, u64)> = Vec::new();
            let mut out = RowBatch::new();
            loop {
                lt.merge_into(&mut out, batch_rows).unwrap();
                if out.is_empty() {
                    break;
                }
                assert!(out.rows.len() <= batch_rows);
                for (row, &p) in out.rows.iter().zip(&out.prefixes) {
                    assert_eq!(p, row.key.norm_prefix());
                    got.push((row.key, decode_count(&row.payload)));
                }
            }
            // Every emitted key distinct with its full multiplicity: a fold
            // group never straddles a batch boundary.
            assert_eq!(got, vec![(1, 3), (4, 4), (8, 3)], "batch_rows = {batch_rows}");
        }
    }

    #[test]
    fn fold_wide_keys_needs_key_equality_not_just_prefix() {
        use crate::fold::FoldSpec;
        use histok_types::AggregateOp;
        // Shared 8-byte prefix, different tails: these must NOT fold.
        let mk = |ks: &[&str]| {
            iter_src(
                ks.iter()
                    .map(|s| Ok(Row::key_only(BytesKey::from(*s))))
                    .collect::<Vec<Result<Row<BytesKey>>>>(),
            )
        };
        for ovc in [true, false] {
            let mut lt = LoserTree::with_ovc(
                vec![
                    mk(&["prefix-0001-a", "prefix-0001-a", "prefix-0002-b"]),
                    mk(&["prefix-0001-a", "prefix-0002-c"]),
                ],
                SortOrder::Ascending,
                ovc,
                None,
            )
            .unwrap();
            lt.set_fold(Some(FoldSpec::new(AggregateOp::First.aggregator())));
            let got: Vec<String> = (&mut lt)
                .map(|r| String::from_utf8(r.unwrap().key.as_slice().to_vec()).unwrap())
                .collect();
            assert_eq!(got, vec!["prefix-0001-a", "prefix-0002-b", "prefix-0002-c"], "ovc = {ovc}");
            assert_eq!(lt.rows_folded(), 2);
        }
    }

    #[test]
    fn equal_short_wide_keys_duel_without_full_comparisons() {
        // Regression: a duel between equal keys whose whole normalized form
        // fits the 8-byte prefix scans zero key bytes — prefix-freeness
        // already proves equality — and must book as an ovc comparison, not
        // a full one. BytesKey norms here are 4 bytes ("aa" + terminator).
        let mk = |ks: &[&str]| {
            iter_src(
                ks.iter()
                    .map(|s| Ok(Row::key_only(BytesKey::from(*s))))
                    .collect::<Vec<Result<Row<BytesKey>>>>(),
            )
        };
        let stats = CmpStats::new();
        let mut lt = LoserTree::with_ovc(
            vec![mk(&["aa", "aa", "aa", "bb"]), mk(&["aa", "aa", "bb", "bb"])],
            SortOrder::Ascending,
            true,
            Some(stats.clone()),
        )
        .unwrap();
        let mut rows = 0usize;
        for r in &mut lt {
            r.unwrap();
            rows += 1;
        }
        assert_eq!(rows, 8);
        let (ovc, full) = lt.cmp_counts();
        assert!(ovc > 0);
        assert_eq!(full, 0, "equal duels resolved inside the prefix must not count as full");
    }
}
