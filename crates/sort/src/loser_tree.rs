//! Tournament (loser-tree) k-way merge.
//!
//! The standard structure for merging many sorted runs: each `next()` costs
//! one leaf-to-root path of ⌈log₂ n⌉ comparisons, independent of how many
//! sources are exhausted. Sources yield `Result<Row>`; errors propagate and
//! fuse the tree.

use histok_types::{Result, Row, SortKey, SortOrder};

/// A k-way merging iterator over sorted sources.
///
/// Ties between sources break toward the lower source index, making the
/// merge stable with respect to source order.
///
/// ```
/// use histok_sort::LoserTree;
/// use histok_types::{Result, Row, SortOrder};
///
/// let runs: Vec<Vec<u64>> = vec![vec![1, 4, 7], vec![2, 5, 8], vec![3, 6, 9]];
/// let sources: Vec<_> = runs
///     .into_iter()
///     .map(|r| r.into_iter().map(|k| Ok(Row::key_only(k))).collect::<Vec<Result<_>>>())
///     .map(Vec::into_iter)
///     .collect();
/// let merged: Vec<u64> = LoserTree::new(sources, SortOrder::Ascending)?
///     .map(|r| r.map(|row| row.key))
///     .collect::<Result<_>>()?;
/// assert_eq!(merged, (1..=9).collect::<Vec<_>>());
/// # Ok::<(), histok_types::Error>(())
/// ```
pub struct LoserTree<K: SortKey, S: Iterator<Item = Result<Row<K>>>> {
    sources: Vec<S>,
    /// `tree[t]` = loser (source index) parked at internal node `t`;
    /// nodes `1..n`, node 0 unused.
    tree: Vec<usize>,
    /// Head row of each source (`None` = exhausted).
    heads: Vec<Option<Row<K>>>,
    winner: usize,
    order: SortOrder,
    /// First error from any source; returned once, then the tree is done.
    pending_error: Option<histok_types::Error>,
    done: bool,
}

impl<K: SortKey, S: Iterator<Item = Result<Row<K>>>> LoserTree<K, S> {
    /// Builds a merge over `sources`, each already sorted in `order`.
    pub fn new(mut sources: Vec<S>, order: SortOrder) -> Result<Self> {
        let n = sources.len();
        let mut heads = Vec::with_capacity(n);
        let mut pending_error = None;
        for s in sources.iter_mut() {
            heads.push(match s.next() {
                Some(Ok(row)) => Some(row),
                Some(Err(e)) => {
                    if pending_error.is_none() {
                        pending_error = Some(e);
                    }
                    None
                }
                None => None,
            });
        }
        let mut lt = LoserTree {
            sources,
            tree: vec![usize::MAX; n.max(1)],
            heads,
            winner: 0,
            order,
            pending_error,
            done: n == 0,
        };
        if n > 0 {
            lt.rebuild();
        }
        Ok(lt)
    }

    /// True if source `a`'s head should be emitted before source `b`'s.
    fn beats(&self, a: usize, b: usize) -> bool {
        match (&self.heads[a], &self.heads[b]) {
            (Some(ka), Some(kb)) => match self.order.cmp_keys(&ka.key, &kb.key) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Greater => false,
                std::cmp::Ordering::Equal => a < b,
            },
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => a < b,
        }
    }

    /// Full bottom-up tournament; O(n).
    fn rebuild(&mut self) {
        let n = self.sources.len();
        if n == 1 {
            self.winner = 0;
            return;
        }
        // winner_at[t] for internal nodes 1..n; leaves are n..2n.
        let mut winner_at = vec![usize::MAX; 2 * n];
        for (i, slot) in winner_at.iter_mut().enumerate().take(2 * n).skip(n) {
            *slot = i - n;
        }
        for t in (1..n).rev() {
            let a = winner_at[2 * t];
            let b = winner_at[2 * t + 1];
            let (w, l) = if self.beats(a, b) { (a, b) } else { (b, a) };
            winner_at[t] = w;
            self.tree[t] = l;
        }
        self.winner = winner_at[1];
    }

    /// Replays the tournament along the winner's path after its head
    /// changed; O(log n).
    fn adjust(&mut self) {
        let n = self.sources.len();
        if n == 1 {
            return;
        }
        let mut s = self.winner;
        let mut t = (s + n) / 2;
        while t > 0 {
            if self.beats(self.tree[t], s) {
                std::mem::swap(&mut s, &mut self.tree[t]);
            }
            t /= 2;
        }
        self.winner = s;
    }

    /// Refills the winner's head from its source.
    fn refill_winner(&mut self) {
        let i = self.winner;
        self.heads[i] = match self.sources[i].next() {
            Some(Ok(row)) => Some(row),
            Some(Err(e)) => {
                if self.pending_error.is_none() {
                    self.pending_error = Some(e);
                }
                None
            }
            None => None,
        };
        self.adjust();
    }

    /// Peeks at the key that would be produced next.
    pub fn peek_key(&self) -> Option<&K> {
        if self.done {
            return None;
        }
        self.heads[self.winner].as_ref().map(|r| &r.key)
    }
}

impl<K: SortKey, S: Iterator<Item = Result<Row<K>>>> Iterator for LoserTree<K, S> {
    type Item = Result<Row<K>>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        if let Some(e) = self.pending_error.take() {
            self.done = true;
            return Some(Err(e));
        }
        let Some(row) = self.heads[self.winner].take() else {
            self.done = true;
            return None;
        };
        self.refill_winner();
        if self.pending_error.is_some() {
            // Surface the error on the *next* call so the current row is
            // not lost; but if callers stop early the error is dropped,
            // which matches iterator semantics.
        }
        Some(Ok(row))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histok_types::Error;

    type VecSource = std::vec::IntoIter<Result<Row<u64>>>;

    fn src(keys: &[u64]) -> VecSource {
        keys.iter().map(|&k| Ok(Row::key_only(k))).collect::<Vec<_>>().into_iter()
    }

    fn merge_keys(sources: Vec<VecSource>, order: SortOrder) -> Vec<u64> {
        LoserTree::new(sources, order).unwrap().map(|r| r.unwrap().key).collect()
    }

    #[test]
    fn merges_two_sources() {
        let got = merge_keys(vec![src(&[1, 3, 5]), src(&[2, 4, 6])], SortOrder::Ascending);
        assert_eq!(got, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn single_source_passthrough() {
        let got = merge_keys(vec![src(&[1, 2, 3])], SortOrder::Ascending);
        assert_eq!(got, vec![1, 2, 3]);
    }

    #[test]
    fn empty_everything() {
        let got = merge_keys(vec![], SortOrder::Ascending);
        assert!(got.is_empty());
        let got = merge_keys(vec![src(&[]), src(&[])], SortOrder::Ascending);
        assert!(got.is_empty());
    }

    #[test]
    fn uneven_sources_and_empties() {
        let got = merge_keys(
            vec![src(&[]), src(&[10]), src(&[1, 2, 3, 4, 5, 6, 7]), src(&[]), src(&[4, 8])],
            SortOrder::Ascending,
        );
        assert_eq!(got, vec![1, 2, 3, 4, 4, 5, 6, 7, 8, 10]);
    }

    #[test]
    fn descending_merge() {
        let got = merge_keys(vec![src(&[9, 5, 1]), src(&[8, 4])], SortOrder::Descending);
        assert_eq!(got, vec![9, 8, 5, 4, 1]);
    }

    #[test]
    fn many_sources_power_of_two_and_odd() {
        for n in [2usize, 3, 4, 5, 7, 8, 15, 16, 17, 33] {
            let sources: Vec<VecSource> = (0..n)
                .map(|i| {
                    let keys: Vec<u64> = (0..20).map(|j| (j * n + i) as u64).collect();
                    src(&keys)
                })
                .collect();
            let got = merge_keys(sources, SortOrder::Ascending);
            let expected: Vec<u64> = (0..(20 * n) as u64).collect();
            assert_eq!(got, expected, "n = {n}");
        }
    }

    #[test]
    fn peek_key_matches_next() {
        let mut lt = LoserTree::new(vec![src(&[5, 7]), src(&[6])], SortOrder::Ascending).unwrap();
        assert_eq!(lt.peek_key(), Some(&5));
        assert_eq!(lt.next().unwrap().unwrap().key, 5);
        assert_eq!(lt.peek_key(), Some(&6));
    }

    #[test]
    fn ties_break_toward_lower_source_index() {
        let a: Vec<Result<Row<u64>>> = vec![Ok(Row::new(5u64, &b"from-a"[..]))];
        let b: Vec<Result<Row<u64>>> = vec![Ok(Row::new(5u64, &b"from-b"[..]))];
        let mut lt =
            LoserTree::new(vec![a.into_iter(), b.into_iter()], SortOrder::Ascending).unwrap();
        assert_eq!(lt.next().unwrap().unwrap().payload.as_ref(), b"from-a");
        assert_eq!(lt.next().unwrap().unwrap().payload.as_ref(), b"from-b");
    }

    #[test]
    fn source_error_is_surfaced_and_fuses() {
        let bad: Vec<Result<Row<u64>>> =
            vec![Ok(Row::key_only(1)), Err(Error::Corrupt("boom".into()))];
        let mut lt = LoserTree::new(
            vec![bad.into_iter(), src(&[100]).collect::<Vec<_>>().into_iter()],
            SortOrder::Ascending,
        )
        .unwrap();
        assert_eq!(lt.next().unwrap().unwrap().key, 1);
        // The error surfaces before any further rows.
        assert!(matches!(lt.next(), Some(Err(Error::Corrupt(_)))));
        assert!(lt.next().is_none());
    }

    #[test]
    fn immediate_error_in_first_rows() {
        let bad: Vec<Result<Row<u64>>> = vec![Err(Error::Corrupt("early".into()))];
        let mut lt = LoserTree::new(
            vec![bad.into_iter(), src(&[1]).collect::<Vec<_>>().into_iter()],
            SortOrder::Ascending,
        )
        .unwrap();
        assert!(matches!(lt.next(), Some(Err(_))));
        assert!(lt.next().is_none());
    }
}
