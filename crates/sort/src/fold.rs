//! Duplicate-fold configuration and accounting for fold-mode sorts.
//!
//! A [`FoldSpec`] carries the [`Aggregator`] into every fold point of the
//! pipeline — run generation, the loser tree, cascade and partitioned
//! merges — together with an optional shared [`FoldStats`] sink. Like
//! [`crate::CmpStats`], the shared counters are atomics that hot loops
//! update from thread-local tallies flushed once per component, not per
//! fold.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use histok_types::Aggregator;

#[derive(Debug, Default)]
struct Counters {
    rows_folded: AtomicU64,
    bytes_folded_pre_spill: AtomicU64,
}

/// Shared fold counters, cheap to clone into every pipeline component.
///
/// `rows_folded` counts every duplicate row absorbed anywhere in the
/// pipeline; `bytes_folded_pre_spill` counts the encoded bytes of
/// duplicates absorbed *before* they reached storage (run generation and
/// the in-memory phase) — the write traffic folding saved outright.
#[derive(Debug, Clone, Default)]
pub struct FoldStats {
    inner: Arc<Counters>,
}

impl FoldStats {
    /// Creates a zeroed counter set.
    pub fn new() -> Self {
        FoldStats::default()
    }

    /// Adds `rows` merge-time folds (rows that had already spilled).
    pub fn record_merge(&self, rows: u64) {
        if rows > 0 {
            self.inner.rows_folded.fetch_add(rows, Ordering::Relaxed);
        }
    }

    /// Adds `rows` folds that happened before spilling, saving `bytes` of
    /// run writes.
    pub fn record_pre_spill(&self, rows: u64, bytes: u64) {
        if rows > 0 {
            self.inner.rows_folded.fetch_add(rows, Ordering::Relaxed);
            self.inner.bytes_folded_pre_spill.fetch_add(bytes, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> FoldSnapshot {
        FoldSnapshot {
            rows_folded: self.inner.rows_folded.load(Ordering::Relaxed),
            bytes_folded_pre_spill: self.inner.bytes_folded_pre_spill.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of [`FoldStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FoldSnapshot {
    /// Duplicate rows absorbed by folding, anywhere in the pipeline.
    pub rows_folded: u64,
    /// Encoded bytes of duplicates absorbed before they were spilled.
    pub bytes_folded_pre_spill: u64,
}

impl FoldSnapshot {
    /// Component-wise sum (saturating).
    pub fn merged(&self, other: &FoldSnapshot) -> FoldSnapshot {
        FoldSnapshot {
            rows_folded: self.rows_folded.saturating_add(other.rows_folded),
            bytes_folded_pre_spill: self
                .bytes_folded_pre_spill
                .saturating_add(other.bytes_folded_pre_spill),
        }
    }
}

/// How a sort should fold equal-key rows: the aggregator to combine
/// payloads with, plus an optional stats sink.
#[derive(Debug, Clone)]
pub struct FoldSpec {
    /// Combines the payloads of two equal-key rows.
    pub agg: Arc<dyn Aggregator>,
    /// Where fold counts are flushed (`None` = don't count).
    pub stats: Option<FoldStats>,
}

impl FoldSpec {
    /// A spec folding with `agg` and no stats sink.
    pub fn new(agg: Arc<dyn Aggregator>) -> Self {
        FoldSpec { agg, stats: None }
    }

    /// Attaches a stats sink.
    pub fn with_stats(mut self, stats: FoldStats) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Flushes merge-time fold tallies to the sink, if any.
    pub fn flush_merge(&self, rows: u64) {
        if let Some(stats) = &self.stats {
            stats.record_merge(rows);
        }
    }

    /// Flushes pre-spill fold tallies to the sink, if any.
    pub fn flush_pre_spill(&self, rows: u64, bytes: u64) {
        if let Some(stats) = &self.stats {
            stats.record_pre_spill(rows, bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histok_types::AggregateOp;

    #[test]
    fn stats_accumulate_across_clones() {
        let stats = FoldStats::new();
        let spec = FoldSpec::new(AggregateOp::First.aggregator()).with_stats(stats.clone());
        spec.flush_merge(3);
        spec.clone().flush_pre_spill(2, 120);
        spec.flush_pre_spill(0, 999); // no-op
        let snap = stats.snapshot();
        assert_eq!(snap.rows_folded, 5);
        assert_eq!(snap.bytes_folded_pre_spill, 120);
    }

    #[test]
    fn snapshots_merge_saturating() {
        let a = FoldSnapshot { rows_folded: u64::MAX, bytes_folded_pre_spill: 1 };
        let b = FoldSnapshot { rows_folded: 1, bytes_folded_pre_spill: 2 };
        let m = a.merged(&b);
        assert_eq!(m.rows_folded, u64::MAX);
        assert_eq!(m.bytes_folded_pre_spill, 3);
    }
}
