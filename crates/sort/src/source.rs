//! Batched row sources for the merge hot path.
//!
//! Row-at-a-time `Iterator` pulls dominate merge wall-clock on cheap keys:
//! every row pays a virtual call, a `Result` branch, a buffered-deque
//! check and (for spilled runs) a channel poke. [`RowSource`] replaces
//! that with block-granular pulls — a source hands over a whole
//! [`RowBatch`] (rows plus the pre-computed normalized-prefix column) and
//! the consumer amortizes its bookkeeping across the batch.
//!
//! [`IterSource`] adapts any legacy `Iterator<Item = Result<Row>>` so
//! hand-built sources (tests, in-memory vectors) keep working unchanged.

use histok_types::{Error, Result, Row, RowBatch, SortKey};

/// Default batch-size hint a consumer passes to [`RowSource::next_batch`]
/// when nothing in its configuration says otherwise.
pub const DEFAULT_BATCH_ROWS: usize = 1024;

/// A producer of sorted row batches.
///
/// The contract mirrors a fused iterator lifted to batch granularity:
///
/// * `Ok(Some(batch))` — a non-empty batch of rows, sorted in the
///   source's output order and contiguous with the previous batch (batch
///   boundaries never reorder or drop rows);
/// * `Ok(None)` — the source is exhausted (and stays exhausted);
/// * `Err(e)` — the source failed; every row produced before the failure
///   has already been handed out in earlier batches.
///
/// `target` is a hint, not a bound: block-oriented sources return whole
/// decoded blocks whatever the hint says, and adapters may return fewer
/// rows when the underlying stream stalls or errors mid-batch.
pub trait RowSource<K: SortKey> {
    /// Pulls the next batch (see the trait docs for the contract).
    fn next_batch(&mut self, target: usize) -> Result<Option<RowBatch<K>>>;
}

/// Adapts a row-at-a-time iterator into a [`RowSource`].
///
/// An error from the iterator that arrives mid-batch is latched: the rows
/// already buffered are returned as a (short) `Ok` batch first, and the
/// error surfaces on the following call — no row that preceded the
/// failure is lost. After surfacing an error the adapter is fused.
pub struct IterSource<I> {
    inner: I,
    /// Error observed mid-batch, surfaced on the next pull.
    pending: Option<Error>,
    done: bool,
}

impl<I> IterSource<I> {
    /// Wraps `inner`.
    pub fn new(inner: I) -> Self {
        IterSource { inner, pending: None, done: false }
    }
}

impl<K: SortKey, I: Iterator<Item = Result<Row<K>>>> RowSource<K> for IterSource<I> {
    fn next_batch(&mut self, target: usize) -> Result<Option<RowBatch<K>>> {
        if let Some(e) = self.pending.take() {
            self.done = true;
            return Err(e);
        }
        if self.done {
            return Ok(None);
        }
        let target = target.max(1);
        let mut batch = RowBatch::with_capacity(target.min(DEFAULT_BATCH_ROWS));
        while batch.len() < target {
            match self.inner.next() {
                Some(Ok(row)) => batch.push(row),
                Some(Err(e)) => {
                    if batch.is_empty() {
                        self.done = true;
                        return Err(e);
                    }
                    self.pending = Some(e);
                    break;
                }
                None => {
                    self.done = true;
                    break;
                }
            }
        }
        if batch.is_empty() {
            Ok(None)
        } else {
            Ok(Some(batch))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(keys: &[u64]) -> Vec<Result<Row<u64>>> {
        keys.iter().map(|&k| Ok(Row::key_only(k))).collect()
    }

    #[test]
    fn batches_respect_target_and_fuse_at_end() {
        let mut s = IterSource::new(rows(&[1, 2, 3, 4, 5]).into_iter());
        let b1 = s.next_batch(2).unwrap().unwrap();
        assert_eq!(b1.rows.iter().map(|r| r.key).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(b1.prefixes, vec![1u64.norm_prefix(), 2u64.norm_prefix()]);
        let b2 = s.next_batch(10).unwrap().unwrap();
        assert_eq!(b2.len(), 3);
        assert!(s.next_batch(10).unwrap().is_none());
        assert!(s.next_batch(10).unwrap().is_none());
    }

    #[test]
    fn mid_batch_error_surfaces_after_buffered_rows() {
        let items: Vec<Result<Row<u64>>> =
            vec![Ok(Row::key_only(1)), Ok(Row::key_only(2)), Err(Error::Corrupt("mid".into()))];
        let mut s = IterSource::new(items.into_iter());
        let b = s.next_batch(8).unwrap().unwrap();
        assert_eq!(b.len(), 2, "rows before the failure must not be lost");
        assert!(matches!(s.next_batch(8), Err(Error::Corrupt(_))));
        assert!(s.next_batch(8).unwrap().is_none(), "fused after the error");
    }

    #[test]
    fn leading_error_returns_immediately() {
        let items: Vec<Result<Row<u64>>> = vec![Err(Error::Corrupt("early".into()))];
        let mut s = IterSource::new(items.into_iter());
        assert!(matches!(s.next_batch(4), Err(Error::Corrupt(_))));
        assert!(s.next_batch(4).unwrap().is_none());
    }

    #[test]
    fn zero_target_still_makes_progress() {
        let mut s = IterSource::new(rows(&[9]).into_iter());
        let b = s.next_batch(0).unwrap().unwrap();
        assert_eq!(b.len(), 1);
    }
}
