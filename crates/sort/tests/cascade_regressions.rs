//! Regression tests pinning the two costs the cascade planner exists
//! to remove:
//!
//! * **Plan cost.** The greedy predecessor reduced one (fan_in − 1)-run
//!   step per iteration, re-ranking the whole catalog every time —
//!   O(steps · n log n) ranking work and `steps` sequential passes over
//!   a 1024-run catalog. The cascade planner ranks once per pass and
//!   finishes the same catalog in a single pass of near-equal groups.
//! * **Cutoff-dead reads.** Runs wholly past the refined cutoff used to
//!   be opened, read and clipped row by row; now they are removed from
//!   the catalog without a single read, booked as skipped I/O.

use std::sync::Arc;

use histok_sort::{merge_runs_to_new_tuned, plan_merges_cascade, MergeConfig, MergeTuning};
use histok_storage::{IoStats, MemoryBackend, RunCatalog, RunMeta};
use histok_types::{Row, SortOrder};

fn write_run(cat: &RunCatalog<u64>, keys: impl Iterator<Item = u64>) -> RunMeta<u64> {
    let mut w = cat.start_run().unwrap();
    for k in keys {
        w.append(&Row::new(k, vec![0u8; 16])).unwrap();
    }
    let meta = w.finish().unwrap();
    cat.register(meta.clone()).unwrap();
    meta
}

fn catalog(mem: &MemoryBackend, prefix: &str) -> RunCatalog<u64> {
    RunCatalog::new(Arc::new(mem.clone()), prefix, SortOrder::Ascending, IoStats::new())
        .with_block_bytes(128)
        .with_spill_pipeline(false)
}

/// 1024 runs at fan-in 32 need exactly one pass of 32 near-equal merges
/// (992 excess runs, ⌈992/31⌉ = 32 groups, 1024 inputs — the whole
/// catalog, landing exactly on 32 survivors). The greedy planner took
/// 32 *sequential* steps and 32 full re-rankings for the same shape; a
/// regression to per-step planning shows up here as `merge_passes > 1`
/// or extra intermediate merges.
#[test]
fn thousand_run_catalog_is_one_planned_pass() {
    let mem = MemoryBackend::new();
    let cat = catalog(&mem, "pc");
    for r in 0..1024u64 {
        write_run(&cat, (0..2).map(|j| r * 2 + j));
    }
    let config = MergeConfig { fan_in: 32, ..MergeConfig::default() };
    let (final_runs, stats) =
        plan_merges_cascade(&cat, &config, None, None, &MergeTuning::default(), 1).unwrap();
    assert_eq!(stats.merge_passes, 1, "1024 runs at fan-in 32 must plan a single pass");
    assert_eq!(stats.intermediate_merges, 32, "single pass must hold exactly 32 merges");
    assert_eq!(final_runs.len(), 32, "pass must land exactly on the fan-in");
    assert_eq!(stats.runs_pruned, 0, "no cutoff, nothing to prune");
    assert_eq!(cat.len(), 32);
}

/// Runs whose `first_key` lies past the caller's cutoff are removed
/// before planning: no merge group contains them, no byte of them is
/// read, and their blocks are booked as skipped I/O — byte-exact.
#[test]
fn initial_cutoff_prunes_dead_runs_without_reading() {
    let mem = MemoryBackend::new();
    let cat = catalog(&mem, "ip");
    for r in 0..3u64 {
        write_run(&cat, (0..100).map(|j| j * 3 + r));
    }
    let dead: Vec<RunMeta<u64>> =
        (0..3u64).map(|r| write_run(&cat, (0..100).map(|j| 1_000 + j * 3 + r))).collect();
    let dead_blocks: u64 = dead.iter().map(|m| m.blocks.len() as u64).sum();
    let dead_bytes: u64 =
        dead.iter().flat_map(|m| &m.blocks).map(|b| u64::from(b.payload_bytes)).sum();
    let config = MergeConfig { fan_in: 4, ..MergeConfig::default() };
    let (final_runs, stats) =
        plan_merges_cascade(&cat, &config, None, Some(&500), &MergeTuning::default(), 1).unwrap();
    assert_eq!(stats.runs_pruned, 3);
    assert_eq!(final_runs.len(), 3, "live runs fit the fan-in untouched");
    assert_eq!(stats.merge_passes, 0);
    let io = cat.stats().snapshot();
    assert_eq!(io.blocks_skipped, dead_blocks, "every dead block booked as skipped");
    assert_eq!(io.bytes_skipped, dead_bytes, "skipped bytes must be byte-exact");
    assert_eq!(io.bytes_read, 0, "pruning must not read");
    assert_eq!(mem.object_count(), 3, "dead objects deleted, live ones kept");
}

/// A cutoff *discovered mid-pass* prunes sibling groups before they are
/// read: merging the two lowest-keyed runs at `limit = 10` proves ten
/// rows ≤ key 4 exist, so the high-keyed group is dropped unopened. The
/// cascade's I/O must be identical to running it with the dead runs
/// never present.
#[test]
fn limit_refined_cutoff_prunes_sibling_groups_unread() {
    let run = |cat: &RunCatalog<u64>, base: u64| write_run(cat, (0..200).map(|j| base + j * 2));
    let config = MergeConfig { fan_in: 2, ..MergeConfig::default() };
    // Synchronous I/O only: with `limit = 10` the merge stops early, and
    // background read-ahead would make `bytes_read` timing-dependent.
    let tuning = MergeTuning { readahead_blocks: 0, io_scheduler: None, ..MergeTuning::default() };

    // Reference: the two live runs merged directly — exactly the one
    // merge the cascade's group 0 performs.
    let ref_mem = MemoryBackend::new();
    let ref_cat = catalog(&ref_mem, "xp");
    run(&ref_cat, 0);
    run(&ref_cat, 1);
    merge_runs_to_new_tuned(&ref_cat, &ref_cat.runs(), Some(10), None, &tuning).unwrap();
    let ref_io = ref_cat.stats().snapshot();
    assert!(ref_io.bytes_read > 0);

    // Same two live runs plus two dead ones starting at key 10 000 —
    // ranked into the second merge group, pruned when group 0's merge
    // publishes its last key.
    let mem = MemoryBackend::new();
    let cat = catalog(&mem, "xp");
    run(&cat, 0);
    run(&cat, 1);
    let dead = [run(&cat, 10_000), run(&cat, 10_001)];
    let dead_blocks: u64 = dead.iter().map(|m| m.blocks.len() as u64).sum();
    let dead_bytes: u64 =
        dead.iter().flat_map(|m| &m.blocks).map(|b| u64::from(b.payload_bytes)).sum();
    let (final_runs, stats) =
        plan_merges_cascade(&cat, &config, Some(10), None, &tuning, 1).unwrap();
    assert_eq!(stats.merge_passes, 1);
    assert_eq!(stats.intermediate_merges, 1, "the dead group must never merge");
    assert_eq!(stats.runs_pruned, 2);
    assert_eq!(final_runs.len(), 1);
    let io = cat.stats().snapshot();
    assert_eq!(io.blocks_skipped, dead_blocks);
    assert_eq!(io.bytes_skipped, dead_bytes);
    assert_eq!(
        io.bytes_read, ref_io.bytes_read,
        "cascade with dead runs must read exactly what the dead-free cascade reads"
    );
}
