//! Differential grid: batched execution against row-at-a-time execution.
//!
//! The batched merge drain (`LoserTree::merge_into`) and the radix
//! run generator ([`BatchSort`]) are pure performance refactors — their
//! output must be byte-identical to the iterator drain and to
//! [`LoadSortStore`] on every cell of the grid
//! {u64, F64Key, BytesKey, KeyPair} × {asc, desc} × {filter on/off} ×
//! batch_rows ∈ {1, 7, 1024}, plus duplicate-heavy inputs and the
//! mid-batch error-latch protocol.
//!
//! Payloads are derived from the key seed alone, so rows with equal keys
//! are byte-identical and stable-vs-unstable sort differences between the
//! radix and comparison paths cannot masquerade as output differences.

use std::sync::Arc;

use histok_sort::run_gen::{BatchSort, LoadSortStore, ResiduePolicy, RunGenerator};
use histok_sort::{
    merge_sources_tuned, open_source, IterSource, LoserTree, MergeTuning, SpillObserver,
};
use histok_storage::{IoStats, MemoryBackend, RunCatalog};
use histok_types::{BytesKey, Error, F64Key, KeyPair, Result, Row, RowBatch, SortKey, SortOrder};

const BATCH_SIZES: [usize; 3] = [1, 7, 1024];
const N_RUNS: usize = 5;
const N_KEYS: u64 = 700;

fn catalog<K: SortKey>(order: SortOrder, tag: &str) -> Arc<RunCatalog<K>> {
    Arc::new(
        RunCatalog::new(
            Arc::new(MemoryBackend::new()),
            RunCatalog::<K>::unique_prefix(tag),
            order,
            IoStats::new(),
        )
        .with_block_bytes(256),
    )
}

/// Payload derived from the key seed alone (see module doc).
fn payload(seed: u64) -> Vec<u8> {
    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).to_le_bytes().to_vec()
}

/// Deterministic pseudo-random key seeds.
fn seeds(n: u64, salt: u64) -> Vec<u64> {
    let mut state = salt | 1;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            state >> 16
        })
        .collect()
}

fn write_runs<K: SortKey>(cat: &RunCatalog<K>, seeds: &[u64], key_fn: impl Fn(u64) -> K) {
    let order = cat.order();
    for r in 0..N_RUNS {
        let mut rows: Vec<Row<K>> = seeds
            .iter()
            .skip(r)
            .step_by(N_RUNS)
            .map(|&s| Row::new(key_fn(s), payload(s)))
            .collect();
        rows.sort_by(|a, b| order.cmp_keys(&a.key, &b.key));
        let mut w = cat.start_run().unwrap();
        for row in &rows {
            w.append(row).unwrap();
        }
        cat.register(w.finish().unwrap()).unwrap();
    }
}

fn open_tree<K: SortKey>(
    cat: &RunCatalog<K>,
    tuning: &MergeTuning,
) -> LoserTree<K, histok_sort::MergeSource<K>> {
    let sources: Vec<_> = cat.runs().iter().map(|m| open_source(cat, m, tuning).unwrap()).collect();
    merge_sources_tuned(sources, cat.order(), tuning).unwrap()
}

/// Row-at-a-time baseline: the plain `Iterator` drain, optionally stopping
/// after `limit` rows (a top-k merge's early stop).
fn drain_rows<K: SortKey>(cat: &RunCatalog<K>, limit: Option<usize>) -> Vec<Row<K>> {
    let tuning = MergeTuning::default();
    let tree = open_tree(cat, &tuning);
    let it = tree.map(|r| r.unwrap());
    match limit {
        Some(n) => it.take(n).collect(),
        None => it.collect(),
    }
}

/// Batched drain through `merge_into`, verifying the code-column invariant
/// on every batch that comes out.
fn drain_batched<K: SortKey>(
    cat: &RunCatalog<K>,
    batch_rows: usize,
    limit: Option<usize>,
) -> Vec<Row<K>> {
    let tuning = MergeTuning::default().with_batch_rows(batch_rows);
    let mut tree = open_tree(cat, &tuning);
    let mut batch = RowBatch::new();
    let mut out: Vec<Row<K>> = Vec::new();
    loop {
        tree.merge_into(&mut batch, batch_rows).unwrap();
        if batch.is_empty() {
            break;
        }
        assert!(batch.len() <= batch_rows, "batch overran its target");
        for (row, &p) in batch.rows.iter().zip(batch.prefixes.iter()) {
            assert_eq!(p, row.key.norm_prefix(), "code column out of sync with rows");
        }
        out.append(&mut batch.rows);
        if let Some(n) = limit {
            if out.len() >= n {
                out.truncate(n);
                break;
            }
        }
    }
    out
}

/// One merge cell: all batch sizes against the row baseline, with and
/// without the early-stop "filter".
fn merge_grid<K: SortKey>(key_fn: impl Fn(u64) -> K + Copy, order: SortOrder, tag: &str) {
    let cat = catalog::<K>(order, tag);
    write_runs(&cat, &seeds(N_KEYS, 0xD1FF), key_fn);
    for filter in [false, true] {
        let limit = filter.then_some(37);
        let expected = drain_rows(&cat, limit);
        for batch_rows in BATCH_SIZES {
            let got = drain_batched(&cat, batch_rows, limit);
            assert_eq!(
                got, expected,
                "{tag}: batched (batch_rows={batch_rows}, limit={limit:?}) diverged from row-at-a-time"
            );
        }
    }
}

#[test]
fn merge_grid_u64() {
    merge_grid(|s| s, SortOrder::Ascending, "dg-u64-asc");
    merge_grid(|s| s, SortOrder::Descending, "dg-u64-desc");
}

#[test]
fn merge_grid_f64() {
    let key = |s: u64| F64Key(s as f64 / 3.0 - 1e6);
    merge_grid(key, SortOrder::Ascending, "dg-f64-asc");
    merge_grid(key, SortOrder::Descending, "dg-f64-desc");
}

#[test]
fn merge_grid_bytes() {
    // Shared prefix longer than 8 bytes: the u64 code column alone cannot
    // distinguish keys, forcing the full-comparison fallback mid-batch.
    let key = |s: u64| BytesKey::new(format!("shared-prefix-{s:016}"));
    merge_grid(key, SortOrder::Ascending, "dg-bytes-asc");
    merge_grid(key, SortOrder::Descending, "dg-bytes-desc");
}

#[test]
fn merge_grid_key_pair() {
    // An 8-byte exact composite: both halves land in the code column.
    let key = |s: u64| KeyPair((s >> 8) as u32, (s & 0xFF) as u32);
    merge_grid(key, SortOrder::Ascending, "dg-pair-asc");
    merge_grid(key, SortOrder::Descending, "dg-pair-desc");
}

#[test]
fn merge_grid_duplicate_heavy() {
    // 700 rows over 13 distinct keys: most duels tie on the code column.
    merge_grid(|s| s % 13, SortOrder::Ascending, "dg-dup-asc");
    merge_grid(|s| s % 13, SortOrder::Descending, "dg-dup-desc");
    let key = |s: u64| BytesKey::new(format!("dup-{:02}", s % 13));
    merge_grid(key, SortOrder::Ascending, "dg-dupb-asc");
}

/// A counting cutoff observer shared by both run-generation paths. The
/// baseline ([`LoadSortStore`]) filters row by row through
/// `should_eliminate`; [`BatchSort`] reads `cutoff_key` once per flush and
/// reports the whole clip through `rows_clipped`. Both feed the same
/// elimination counter, so the accounting must agree too.
struct CutoffObs<K> {
    cut: K,
    order: SortOrder,
    eliminated: u64,
    spilled: u64,
}

impl<K: SortKey> SpillObserver<K> for CutoffObs<K> {
    fn should_eliminate(&mut self, key: &K) -> bool {
        let e = self.order.follows(key, &self.cut);
        if e {
            self.eliminated += 1;
        }
        e
    }
    fn row_spilled(&mut self, _key: &K) {
        self.spilled += 1;
    }
    fn cutoff_key(&mut self) -> Option<K> {
        Some(self.cut.clone())
    }
    fn rows_clipped(&mut self, n: u64) {
        self.eliminated += n;
    }
}

/// Pushes every seed through `gen`, returning (runs, residue, eliminated,
/// spilled) with each run fully decoded back from storage.
///
/// Run-generation payloads are derived from the *key* (its normalized
/// prefix), not the seed: the radix sort is stable, the comparison sort
/// is not, and equal keys must stay byte-identical either way.
#[allow(clippy::type_complexity)]
fn generate<K: SortKey>(
    gen: &mut dyn RunGenerator<K>,
    cat: &RunCatalog<K>,
    obs: &mut CutoffObs<K>,
    seeds: &[u64],
    key_fn: impl Fn(u64) -> K,
    residue: ResiduePolicy,
) -> (Vec<Vec<Row<K>>>, Vec<Vec<Row<K>>>, u64, u64) {
    for &s in seeds {
        let key = key_fn(s);
        let pl = payload(key.norm_prefix());
        gen.push(Row::new(key, pl), obs).unwrap();
    }
    let residue = gen.finish(obs, residue).unwrap();
    let runs: Vec<Vec<Row<K>>> =
        cat.runs().iter().map(|m| cat.open(m).unwrap().map(|r| r.unwrap()).collect()).collect();
    (runs, residue, obs.eliminated, obs.spilled)
}

/// One run-generation cell: radix [`BatchSort`] against comparison-based
/// [`LoadSortStore`], same budget, same observer logic, byte-identical
/// runs and residue.
fn rungen_grid<K: SortKey>(
    key_fn: impl Fn(u64) -> K + Copy,
    order: SortOrder,
    filter: bool,
    residue: ResiduePolicy,
    tag: &str,
) {
    let seeds = seeds(N_KEYS, 0xBEEF);
    // The cutoff admits roughly the better half of the key space.
    let cut = {
        let mut keys: Vec<K> = seeds.iter().map(|&s| key_fn(s)).collect();
        keys.sort_by(|a, b| order.cmp_keys(a, b));
        keys[keys.len() / 2].clone()
    };
    let budget = 4096;
    let run = |gen_batch: bool| {
        let cat = catalog::<K>(order, if gen_batch { "rg-batch" } else { "rg-cmp" });
        let mut gen: Box<dyn RunGenerator<K>> = if gen_batch {
            Box::new(BatchSort::new(cat.clone(), budget))
        } else {
            Box::new(LoadSortStore::new(cat.clone(), budget))
        };
        let mut obs = CutoffObs { cut: cut.clone(), order, eliminated: 0, spilled: 0 };
        // Without the filter dimension, neutralize the cutoff by making it
        // the worst admitted key: `follows` never fires.
        if !filter {
            let mut keys: Vec<K> = seeds.iter().map(|&s| key_fn(s)).collect();
            keys.sort_by(|a, b| order.cmp_keys(a, b));
            obs.cut = keys.last().unwrap().clone();
        }
        generate(gen.as_mut(), &cat, &mut obs, &seeds, key_fn, residue)
    };
    let (runs_b, res_b, elim_b, spill_b) = run(true);
    let (runs_c, res_c, elim_c, spill_c) = run(false);
    assert_eq!(runs_b, runs_c, "{tag}: run contents diverged");
    assert_eq!(res_b, res_c, "{tag}: residue diverged");
    assert_eq!(elim_b, elim_c, "{tag}: elimination counts diverged");
    assert_eq!(spill_b, spill_c, "{tag}: spill counts diverged");
}

#[test]
fn rungen_grid_all_key_types() {
    for order in [SortOrder::Ascending, SortOrder::Descending] {
        for filter in [false, true] {
            for residue in [ResiduePolicy::SpillToRuns, ResiduePolicy::KeepInMemory] {
                let tag = format!("rg-{order:?}-f{filter}-{residue:?}");
                rungen_grid(|s| s, order, filter, residue, &format!("{tag}-u64"));
                rungen_grid(
                    |s| F64Key(s as f64 / 7.0 - 5e5),
                    order,
                    filter,
                    residue,
                    &format!("{tag}-f64"),
                );
                rungen_grid(
                    |s| BytesKey::new(format!("commonprefix-{s:016}")),
                    order,
                    filter,
                    residue,
                    &format!("{tag}-bytes"),
                );
                rungen_grid(
                    |s| KeyPair((s >> 8) as u32, (s & 0xFF) as u32),
                    order,
                    filter,
                    residue,
                    &format!("{tag}-pair"),
                );
            }
        }
    }
}

#[test]
fn rungen_duplicate_heavy() {
    for order in [SortOrder::Ascending, SortOrder::Descending] {
        rungen_grid(|s| s % 13, order, true, ResiduePolicy::SpillToRuns, "rg-dup");
        rungen_grid(|s| s % 13, order, false, ResiduePolicy::KeepInMemory, "rg-dup-keep");
    }
}

/// Mid-batch error latch: a source error striking inside a batch must
/// first surface the rows already merged as a short `Ok` batch, then the
/// error, then a fused (empty-forever) tree — mirroring the iterator
/// protocol, where the same rows precede the same error.
#[test]
fn error_latch_mid_batch_matches_row_protocol() {
    let make_sources = || {
        let good: Vec<Result<Row<u64>>> = (0..10).map(|k| Ok(Row::key_only(k * 2))).collect();
        let mut bad: Vec<Result<Row<u64>>> = (0..5).map(|k| Ok(Row::key_only(k * 2 + 1))).collect();
        bad.push(Err(Error::Corrupt("injected mid-stream".into())));
        bad.push(Ok(Row::key_only(999)));
        vec![IterSource::new(good.into_iter()), IterSource::new(bad.into_iter())]
    };

    // Row baseline: rows until the latch, then the error, then None.
    let mut row_rows = Vec::new();
    let mut row_err = None;
    let mut tree = LoserTree::new(make_sources(), SortOrder::Ascending).unwrap();
    for r in tree.by_ref() {
        match r {
            Ok(row) => row_rows.push(row),
            Err(e) => {
                row_err = Some(e.to_string());
                break;
            }
        }
    }
    assert!(tree.next().is_none(), "iterator must fuse after the error");

    // Batched path: same rows across batches, then the error, then fused.
    for batch_rows in BATCH_SIZES {
        let mut tree = LoserTree::new(make_sources(), SortOrder::Ascending).unwrap();
        let mut batch = RowBatch::new();
        let mut got_rows = Vec::new();
        let got_err = loop {
            match tree.merge_into(&mut batch, batch_rows) {
                Ok(()) if batch.is_empty() => break None,
                Ok(()) => got_rows.append(&mut batch.rows),
                Err(e) => break Some(e.to_string()),
            }
        };
        assert_eq!(got_rows, row_rows, "batch_rows={batch_rows}: rows before the error diverged");
        assert_eq!(got_err, row_err, "batch_rows={batch_rows}: error mismatch");
        tree.merge_into(&mut batch, batch_rows).unwrap();
        assert!(batch.is_empty(), "batch_rows={batch_rows}: tree must fuse after the error");
    }
}
