//! Property-based tests of the sorting substrate: the loser tree against a
//! reference merge, run generation invariants, and merge planning.

use std::sync::Arc;

use proptest::prelude::*;

use histok_sort::run_gen::{LoadSortStore, ReplacementSelection, ResiduePolicy, RunGenerator};
use histok_sort::{
    merge_sources, plan_merges, IterSource, LoserTree, MergeConfig, MergePolicy, MergeSource,
    NoopObserver,
};
use histok_storage::{IoStats, MemoryBackend, RunCatalog};
use histok_types::{Result, Row, SortOrder};

type VecSource = IterSource<std::vec::IntoIter<Result<Row<u64>>>>;

fn source(keys: &[u64]) -> VecSource {
    IterSource::new(keys.iter().map(|&k| Ok(Row::key_only(k))).collect::<Vec<_>>().into_iter())
}

fn catalog(order: SortOrder) -> Arc<RunCatalog<u64>> {
    Arc::new(
        RunCatalog::new(
            Arc::new(MemoryBackend::new()),
            RunCatalog::<u64>::unique_prefix("prop"),
            order,
            IoStats::new(),
        )
        .with_block_bytes(256),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Merging arbitrary sorted sources equals sorting the concatenation.
    #[test]
    fn loser_tree_matches_reference_merge(
        mut runs in proptest::collection::vec(
            proptest::collection::vec(any::<u64>(), 0..100),
            0..12,
        ),
        descending in any::<bool>(),
    ) {
        let order = if descending { SortOrder::Descending } else { SortOrder::Ascending };
        for run in runs.iter_mut() {
            run.sort_unstable();
            if descending {
                run.reverse();
            }
        }
        let mut expected: Vec<u64> = runs.iter().flatten().copied().collect();
        expected.sort_unstable();
        if descending {
            expected.reverse();
        }
        let sources: Vec<VecSource> = runs.iter().map(|r| source(r)).collect();
        let got: Vec<u64> = LoserTree::new(sources, order)
            .unwrap()
            .map(|r| r.unwrap().key)
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// Replacement selection: every run individually sorted, the union of
    /// runs plus residue is exactly the input multiset, and sorted input
    /// produces at most one run.
    #[test]
    fn replacement_selection_invariants(
        keys in proptest::collection::vec(0u64..5_000, 0..1_500),
        mem_rows in 2usize..64,
        keep in any::<bool>(),
    ) {
        let cat = catalog(SortOrder::Ascending);
        let mut gen = ReplacementSelection::new(cat.clone(), mem_rows * 60);
        let mut obs = NoopObserver;
        for &k in &keys {
            gen.push(Row::key_only(k), &mut obs).unwrap();
        }
        let residue = gen
            .finish(&mut obs, if keep { ResiduePolicy::KeepInMemory } else { ResiduePolicy::SpillToRuns })
            .unwrap();
        let mut collected: Vec<u64> = Vec::new();
        for meta in cat.runs() {
            let run: Vec<u64> = cat.open(&meta).unwrap().map(|r| r.unwrap().key).collect();
            prop_assert!(run.windows(2).all(|w| w[0] <= w[1]), "run not sorted");
            collected.extend(run);
        }
        for seq in &residue {
            prop_assert!(seq.windows(2).all(|w| w[0].key <= w[1].key), "residue not sorted");
            collected.extend(seq.iter().map(|r| r.key));
        }
        let mut expected = keys.clone();
        expected.sort_unstable();
        collected.sort_unstable();
        prop_assert_eq!(collected, expected);
    }

    /// Load-sort-store obeys the same conservation law.
    #[test]
    fn load_sort_store_conserves_rows(
        keys in proptest::collection::vec(0u64..5_000, 0..1_500),
        mem_rows in 2usize..64,
    ) {
        let cat = catalog(SortOrder::Ascending);
        let mut gen = LoadSortStore::new(cat.clone(), mem_rows * 60);
        let mut obs = NoopObserver;
        for &k in &keys {
            gen.push(Row::key_only(k), &mut obs).unwrap();
        }
        gen.finish(&mut obs, ResiduePolicy::SpillToRuns).unwrap();
        let mut collected: Vec<u64> = cat
            .runs()
            .iter()
            .flat_map(|m| cat.open(m).unwrap().map(|r| r.unwrap().key).collect::<Vec<_>>())
            .collect();
        let mut expected = keys.clone();
        expected.sort_unstable();
        collected.sort_unstable();
        prop_assert_eq!(collected, expected);
    }

    /// Multi-level merge planning preserves content exactly (no limit/cutoff).
    #[test]
    fn plan_merges_preserves_content(
        runs in proptest::collection::vec(
            proptest::collection::vec(0u64..10_000, 1..60),
            1..24,
        ),
        fan_in in 2usize..6,
        smallest_first in any::<bool>(),
    ) {
        let cat = catalog(SortOrder::Ascending);
        for keys in &runs {
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            let mut w = cat.start_run().unwrap();
            for k in sorted {
                w.append(&Row::key_only(k)).unwrap();
            }
            cat.register(w.finish().unwrap()).unwrap();
        }
        let cfg = MergeConfig {
            fan_in,
            policy: if smallest_first {
                MergePolicy::SmallestFirst
            } else {
                MergePolicy::LowestKeyFirst
            },
        };
        let final_runs = plan_merges(&cat, &cfg, None, None).unwrap();
        prop_assert!(final_runs.len() <= fan_in);
        let mut sources = Vec::new();
        for meta in &final_runs {
            sources.push(MergeSource::Run(cat.open(meta).unwrap()));
        }
        let got: Vec<u64> = merge_sources(sources, SortOrder::Ascending)
            .unwrap()
            .map(|r| r.unwrap().key)
            .collect();
        let mut expected: Vec<u64> = runs.iter().flatten().copied().collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// Truncating a merge at `limit` yields exactly the global best `limit`
    /// rows of the merged runs.
    #[test]
    fn merge_with_limit_is_a_true_top_k(
        runs in proptest::collection::vec(
            proptest::collection::vec(0u64..10_000, 1..60),
            2..10,
        ),
        limit in 1u64..100,
    ) {
        let cat = catalog(SortOrder::Ascending);
        for keys in &runs {
            let mut sorted = keys.clone();
            sorted.sort_unstable();
            let mut w = cat.start_run().unwrap();
            for k in sorted {
                w.append(&Row::key_only(k)).unwrap();
            }
            cat.register(w.finish().unwrap()).unwrap();
        }
        let all = cat.runs();
        let merged = histok_sort::merge_runs_to_new(&cat, &all, Some(limit), None).unwrap();
        let got: Vec<u64> = cat.open(&merged).unwrap().map(|r| r.unwrap().key).collect();
        let mut expected: Vec<u64> = runs.iter().flatten().copied().collect();
        expected.sort_unstable();
        expected.truncate(limit as usize);
        prop_assert_eq!(got, expected);
    }
}
