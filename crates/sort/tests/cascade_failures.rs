//! Failure and cancellation discipline of the parallel cascade: the
//! first error a pass worker hits must latch (stopping the other
//! workers from claiming more groups), resurface from
//! [`plan_merges_cascade`], and leave no orphaned intermediate run
//! behind — every registered run has a backing object and every backing
//! object a registration. All bodies run under a watchdog so a leaked
//! or deadlocked pass worker fails the test instead of hanging the
//! suite.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use histok_sort::{plan_merges_cascade, MergeConfig, MergeTuning};
use histok_storage::{
    FaultBackend, FaultPlan, IoStats, MemoryBackend, RunCatalog, ThrottleModel, ThrottledBackend,
};
use histok_types::{Error, Row, SortOrder};

const TEST_TIMEOUT: Duration = Duration::from_secs(30);

fn with_watchdog<F: FnOnce() + Send + 'static>(body: F) {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        body();
        let _ = tx.send(());
    });
    match rx.recv_timeout(TEST_TIMEOUT) {
        Ok(()) => handle.join().unwrap(),
        Err(_) => panic!("test body deadlocked (exceeded {TEST_TIMEOUT:?})"),
    }
}

fn write_run(cat: &RunCatalog<u64>, keys: impl Iterator<Item = u64>) {
    let mut w = cat.start_run().unwrap();
    for k in keys {
        w.append(&Row::new(k, vec![0u8; 8])).unwrap();
    }
    cat.register(w.finish().unwrap()).unwrap();
}

/// Registered-run names and backend objects must agree after a failed
/// cascade: inputs of the failed merge stay registered and readable,
/// the half-written output is deleted, nothing leaks.
fn assert_no_orphans(cat: &RunCatalog<u64>, mem: &MemoryBackend) {
    assert_eq!(
        cat.len(),
        mem.object_count(),
        "registered runs and stored objects diverged: orphaned or leaked intermediate run"
    );
    for meta in cat.runs() {
        let mut reader = cat.open(&meta).expect("surviving run must open");
        let mut rows = 0u64;
        let mut clean = true;
        loop {
            match reader.next_batch() {
                Ok(Some(batch)) => rows += batch.len() as u64,
                Ok(None) => break,
                // The injected fault itself (e.g. the corrupt initial
                // run, still registered because its merge failed) —
                // parity above is the orphan guard; row counts can only
                // be verified on clean runs.
                Err(_) => {
                    clean = false;
                    break;
                }
            }
        }
        if clean {
            assert_eq!(rows, meta.rows, "surviving run {} lost rows", meta.name);
        }
    }
}

#[test]
fn corrupt_input_latches_the_pass_and_resurfaces() {
    with_watchdog(|| {
        let mem = MemoryBackend::shared();
        let be = FaultBackend::new(
            mem.clone(),
            // Corrupts a byte inside one of the initial runs, so the
            // merge group reading it hits Error::Corrupt mid-drain
            // while other groups are in flight.
            FaultPlan { corrupt_write_byte_at: Some(3_000), ..FaultPlan::none() },
        );
        let cat: RunCatalog<u64> =
            RunCatalog::new(Arc::new(be), "cf", SortOrder::Ascending, IoStats::new())
                .with_block_bytes(128)
                .with_spill_pipeline(false);
        for r in 0..8u64 {
            write_run(&cat, (0..600).map(|j| j * 8 + r));
        }
        let config = MergeConfig { fan_in: 2, ..MergeConfig::default() };
        let result = plan_merges_cascade(&cat, &config, None, None, &MergeTuning::default(), 4);
        assert!(
            matches!(result, Err(Error::Corrupt(_))),
            "corruption must resurface, got {result:?}"
        );
        assert_no_orphans(&cat, &mem);
    });
}

#[test]
fn write_failure_mid_pass_deletes_the_partial_output() {
    with_watchdog(|| {
        // The initial runs are written through a plain backend; the
        // fault backend (whose write budget starts at zero) only sees
        // the intermediate merge outputs, so a pass worker fails
        // mid-run-write — exercising the half-written-output cleanup
        // while other workers' merges are in flight.
        let mem = MemoryBackend::shared();
        let plain: RunCatalog<u64> =
            RunCatalog::new(Arc::new(mem.clone()), "cw", SortOrder::Ascending, IoStats::new())
                .with_block_bytes(128)
                .with_spill_pipeline(false);
        for r in 0..8u64 {
            write_run(&plain, (0..400).map(|j| j * 8 + r));
        }
        let be = FaultBackend::new(
            mem.clone(),
            FaultPlan { fail_write_after_bytes: Some(2_000), ..FaultPlan::none() },
        );
        let fault_probe = be.clone();
        // A distinct run-name prefix keeps merge outputs from colliding
        // with the adopted initial runs.
        let cat: RunCatalog<u64> =
            RunCatalog::new(Arc::new(be), "cwo", SortOrder::Ascending, IoStats::new())
                .with_block_bytes(128)
                .with_spill_pipeline(false);
        for meta in plain.runs() {
            cat.register(meta).unwrap();
        }
        let config = MergeConfig { fan_in: 2, ..MergeConfig::default() };
        let result = plan_merges_cascade(&cat, &config, None, None, &MergeTuning::default(), 4);
        assert!(result.is_err(), "write fault must resurface, got {result:?}");
        assert!(fault_probe.fault_fired(), "plan never tripped");
        assert_no_orphans(&cat, &mem);
    });
}

#[test]
fn error_under_throttle_joins_every_worker() {
    with_watchdog(|| {
        // Sleeping throttle keeps the other pass workers mid-I/O when
        // one group hits the corrupt block: the scope must still join
        // them all before the error returns.
        let mem = MemoryBackend::shared();
        let model = ThrottleModel {
            per_op: Duration::from_micros(100),
            per_byte: Duration::ZERO,
            sleep: true,
        };
        let be = FaultBackend::new(
            ThrottledBackend::new(mem.clone(), model),
            FaultPlan { corrupt_write_byte_at: Some(5_000), ..FaultPlan::none() },
        );
        let cat: RunCatalog<u64> =
            RunCatalog::new(Arc::new(be), "ct", SortOrder::Ascending, IoStats::new())
                .with_block_bytes(128)
                .with_spill_pipeline(false);
        for r in 0..8u64 {
            write_run(&cat, (0..600).map(|j| j * 8 + r));
        }
        let config = MergeConfig { fan_in: 2, ..MergeConfig::default() };
        let result = plan_merges_cascade(&cat, &config, None, None, &MergeTuning::default(), 4);
        assert!(matches!(result, Err(Error::Corrupt(_))), "got {result:?}");
        assert_no_orphans(&cat, &mem);
    });
}
