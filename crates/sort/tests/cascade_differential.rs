//! Differential grid: the cascade planner must be invisible in the
//! output.
//!
//! Every {key type} × {sort order} × {filter on/off} cell writes the
//! same 96-run catalog, merges it once in a single giant-fan-in pass
//! (the baseline — no intermediate merges at all), and then replays it
//! through [`plan_merges_cascade`] across fan_in ∈ {2, 4, 64} ×
//! workers ∈ {1, 4}, asserting byte-identical output every time.
//!
//! Keys are duplicate-heavy (~37 distinct values over 5 760 rows), so
//! runs of equal keys straddle group and pass boundaries — exactly
//! where a cascade that merged the wrong groups, dropped a pass-through
//! singleton, or double-counted a survivor would diverge. Payloads are
//! *key-derived* (equal keys ⇒ equal payloads): with `workers > 1` and
//! a `limit`, concurrent merges publish cutoff refinements in
//! completion order, so which physical row wins an equal-key tie is
//! timing-dependent — but with indistinguishable duplicates the byte
//! sequence is still uniquely determined, which is precisely the
//! guarantee the cascade owes its callers.

use std::sync::Arc;

use histok_sort::{
    merge_sources_tuned, open_source, plan_merges_cascade, MergeConfig, MergeTuning,
};
use histok_storage::{IoStats, MemoryBackend, RunCatalog, RunMeta};
use histok_types::{BytesKey, F64Key, Result, Row, SortKey, SortOrder};
use rand::{rngs::StdRng, Rng, SeedableRng};

const RUNS: usize = 96;
const ROWS_PER_RUN: usize = 60;
const LIMIT: u64 = 200;
const DISTINCT: u64 = 37;

/// Key (and payload) derived from a small seed space, so duplicates are
/// plentiful and byte-indistinguishable.
trait GridKey: SortKey {
    fn from_seed(seed: u64) -> Self;
}

impl GridKey for u64 {
    fn from_seed(seed: u64) -> Self {
        seed
    }
}

impl GridKey for F64Key {
    fn from_seed(seed: u64) -> Self {
        F64Key(seed as f64 * 2.5 - 37.5)
    }
}

impl GridKey for BytesKey {
    fn from_seed(seed: u64) -> Self {
        BytesKey::new(format!("shared-prefix-{seed:04}"))
    }
}

fn payload(seed: u64) -> Vec<u8> {
    format!("payload-for-{seed:04}").into_bytes()
}

fn fresh_catalog<K: GridKey>(order: SortOrder) -> RunCatalog<K> {
    let cat = RunCatalog::new(Arc::new(MemoryBackend::new()), "cd", order, IoStats::new())
        .with_block_bytes(256)
        .with_spill_pipeline(false);
    let mut rng = StdRng::seed_from_u64(0xCA5CADE);
    for _ in 0..RUNS {
        let mut seeds: Vec<u64> = (0..ROWS_PER_RUN).map(|_| rng.gen_range(0..DISTINCT)).collect();
        seeds.sort_by(|a, b| order.cmp_keys(&K::from_seed(*a), &K::from_seed(*b)));
        let mut w = cat.start_run().unwrap();
        for s in seeds {
            w.append(&Row::new(K::from_seed(s), payload(s))).unwrap();
        }
        cat.register(w.finish().unwrap()).unwrap();
    }
    cat
}

/// Drains `runs` through one loser-tree merge, in the given order.
fn drain<K: SortKey>(cat: &RunCatalog<K>, runs: &[RunMeta<K>]) -> Vec<Row<K>> {
    let tuning = MergeTuning::default();
    let sources = runs.iter().map(|m| open_source(cat, m, &tuning).unwrap()).collect();
    let tree = merge_sources_tuned(sources, cat.order(), &tuning).unwrap();
    tree.collect::<Result<Vec<Row<K>>>>().unwrap()
}

fn cascade_differential<K: GridKey>(label: &str, order: SortOrder, filter: bool) {
    let limit = filter.then_some(LIMIT);
    let take = if filter { LIMIT as usize } else { RUNS * ROWS_PER_RUN };

    // Baseline: one pass over all 96 original runs, no cascade at all.
    let base_cat = fresh_catalog::<K>(order);
    let mut baseline = drain(&base_cat, &base_cat.runs());
    baseline.truncate(take);
    assert_eq!(baseline.len(), take, "{label}: baseline short");

    for fan_in in [2usize, 4, 64] {
        for workers in [1usize, 4] {
            let cat = fresh_catalog::<K>(order);
            let config = MergeConfig { fan_in, ..MergeConfig::default() };
            let (final_runs, stats) =
                plan_merges_cascade(&cat, &config, limit, None, &MergeTuning::default(), workers)
                    .unwrap();
            assert!(
                final_runs.len() <= fan_in,
                "{label}: F={fan_in} W={workers} left {} runs",
                final_runs.len()
            );
            if fan_in < RUNS {
                assert!(
                    stats.merge_passes > 0 && stats.intermediate_merges > 0,
                    "{label}: F={fan_in} W={workers} cascade never merged: {stats:?}"
                );
            } else {
                assert_eq!(
                    stats.merge_passes, 0,
                    "{label}: F={fan_in} fits, yet passes ran: {stats:?}"
                );
            }
            let mut out = drain(&cat, &final_runs);
            out.truncate(take);
            assert_eq!(
                baseline.len(),
                out.len(),
                "{label}: F={fan_in} W={workers} row counts diverged"
            );
            for (i, (a, b)) in baseline.iter().zip(&out).enumerate() {
                assert_eq!(a.key, b.key, "{label}: F={fan_in} W={workers} key diverged at row {i}");
                assert_eq!(
                    a.payload, b.payload,
                    "{label}: F={fan_in} W={workers} payload diverged at row {i}"
                );
            }
        }
    }
}

macro_rules! grid_cell {
    ($name:ident, $key:ty, $order:expr, $filter:expr) => {
        #[test]
        fn $name() {
            let label = concat!(
                stringify!($key),
                " / ",
                stringify!($order),
                " / filter=",
                stringify!($filter)
            );
            cascade_differential::<$key>(label, $order, $filter);
        }
    };
}

grid_cell!(u64_ascending_filtered, u64, SortOrder::Ascending, true);
grid_cell!(u64_ascending_unfiltered, u64, SortOrder::Ascending, false);
grid_cell!(u64_descending_filtered, u64, SortOrder::Descending, true);
grid_cell!(u64_descending_unfiltered, u64, SortOrder::Descending, false);
grid_cell!(f64_ascending_filtered, F64Key, SortOrder::Ascending, true);
grid_cell!(f64_ascending_unfiltered, F64Key, SortOrder::Ascending, false);
grid_cell!(f64_descending_filtered, F64Key, SortOrder::Descending, true);
grid_cell!(f64_descending_unfiltered, F64Key, SortOrder::Descending, false);
grid_cell!(bytes_ascending_filtered, BytesKey, SortOrder::Ascending, true);
grid_cell!(bytes_ascending_unfiltered, BytesKey, SortOrder::Ascending, false);
grid_cell!(bytes_descending_filtered, BytesKey, SortOrder::Descending, true);
grid_cell!(bytes_descending_unfiltered, BytesKey, SortOrder::Descending, false);
