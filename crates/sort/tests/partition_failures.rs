//! Failure and cancellation discipline of the partitioned parallel merge:
//! a worker error mid-partition must resurface to the consumer, and
//! dropping the output stream mid-merge must join every worker without
//! deadlock. All bodies run under a watchdog so a leak or deadlock fails
//! the test instead of hanging the suite.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use histok_sort::{merge_runs_partitioned, ExternalSorter, MergeTuning};
use histok_storage::{
    FaultBackend, FaultPlan, IoStats, MemoryBackend, RunCatalog, ThrottleModel, ThrottledBackend,
};
use histok_types::{Error, Result, Row, SortOrder};

const TEST_TIMEOUT: Duration = Duration::from_secs(30);

fn with_watchdog<F: FnOnce() + Send + 'static>(body: F) {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        body();
        let _ = tx.send(());
    });
    match rx.recv_timeout(TEST_TIMEOUT) {
        Ok(()) => handle.join().unwrap(),
        Err(_) => panic!("test body deadlocked (exceeded {TEST_TIMEOUT:?})"),
    }
}

fn write_run(cat: &RunCatalog<u64>, keys: impl Iterator<Item = u64>) {
    let mut w = cat.start_run().unwrap();
    for k in keys {
        w.append(&Row::new(k, vec![0u8; 8])).unwrap();
    }
    cat.register(w.finish().unwrap()).unwrap();
}

#[test]
fn worker_error_mid_partition_resurfaces_to_the_consumer() {
    with_watchdog(|| {
        let be = FaultBackend::new(
            MemoryBackend::new(),
            // Corrupts a byte inside a later block of the first run, so
            // some partition's worker hits Error::Corrupt mid-merge.
            FaultPlan { corrupt_write_byte_at: Some(2_000), ..FaultPlan::none() },
        );
        let cat: Arc<RunCatalog<u64>> = Arc::new(
            RunCatalog::new(Arc::new(be), "pf", SortOrder::Ascending, IoStats::new())
                .with_block_bytes(128)
                .with_spill_pipeline(false),
        );
        for r in 0..3u64 {
            write_run(&cat, (0..800).map(|j| j * 3 + r));
        }
        let runs = cat.runs();
        let merge = merge_runs_partitioned(&cat, &runs, vec![], 4, None, &MergeTuning::default())
            .unwrap()
            .partitioned()
            .expect("partitionable");
        let collected: Result<Vec<Row<u64>>> = merge.collect();
        assert!(matches!(collected, Err(Error::Corrupt(_))), "got {collected:?}");
    });
}

#[test]
fn consumer_is_fused_after_a_worker_error() {
    with_watchdog(|| {
        let be = FaultBackend::new(
            MemoryBackend::new(),
            FaultPlan { corrupt_write_byte_at: Some(2_000), ..FaultPlan::none() },
        );
        let cat: Arc<RunCatalog<u64>> = Arc::new(
            RunCatalog::new(Arc::new(be), "pf", SortOrder::Ascending, IoStats::new())
                .with_block_bytes(128)
                .with_spill_pipeline(false),
        );
        write_run(&cat, 0..2_000);
        write_run(&cat, 2_000..4_000);
        let runs = cat.runs();
        let mut merge =
            merge_runs_partitioned(&cat, &runs, vec![], 4, None, &MergeTuning::default())
                .unwrap()
                .partitioned()
                .expect("partitionable");
        let mut saw_error = false;
        for row in &mut merge {
            if row.is_err() {
                saw_error = true;
                break;
            }
        }
        assert!(saw_error, "corruption never surfaced");
        assert!(merge.next().is_none(), "stream must fuse after an error");
    });
}

#[test]
fn dropping_the_stream_mid_merge_joins_all_workers() {
    with_watchdog(|| {
        // Sleeping throttle keeps workers mid-I/O (and blocked on their
        // bounded output channels) when the consumer walks away.
        let model = ThrottleModel {
            per_op: Duration::from_micros(200),
            per_byte: Duration::ZERO,
            sleep: true,
        };
        let be = ThrottledBackend::new(MemoryBackend::new(), model);
        let cat: Arc<RunCatalog<u64>> = Arc::new(
            RunCatalog::new(Arc::new(be), "pd", SortOrder::Ascending, IoStats::new())
                .with_block_bytes(64),
        );
        for r in 0..4u64 {
            write_run(&cat, (0..2_000).map(|j| j * 4 + r));
        }
        let runs = cat.runs();
        let mut merge =
            merge_runs_partitioned(&cat, &runs, vec![], 4, None, &MergeTuning::default())
                .unwrap()
                .partitioned()
                .expect("partitionable");
        let first = merge.next().unwrap().unwrap();
        assert_eq!(first.key, 0);
        // Dropping the stream closes every partition channel; each worker
        // (and each of its prefetch readers) must unblock and join. A
        // leaked or deadlocked thread hangs the watchdog.
        drop(merge);
    });
}

#[test]
fn dropping_before_the_first_row_joins_all_workers() {
    with_watchdog(|| {
        let cat: Arc<RunCatalog<u64>> = Arc::new(
            RunCatalog::new(
                Arc::new(MemoryBackend::new()),
                "pd0",
                SortOrder::Ascending,
                IoStats::new(),
            )
            .with_block_bytes(64),
        );
        for r in 0..2u64 {
            write_run(&cat, (0..3_000).map(|j| j * 2 + r));
        }
        let runs = cat.runs();
        let merge = merge_runs_partitioned(&cat, &runs, vec![], 4, None, &MergeTuning::default())
            .unwrap()
            .partitioned()
            .expect("partitionable");
        drop(merge);
    });
}

#[test]
fn partitioned_external_sort_matches_serial_under_throttle() {
    with_watchdog(|| {
        let keys: Vec<u64> = (0..6_000u64).map(|i| (i * 2_654_435_761) % 5_000).collect();
        let mut outputs = Vec::new();
        for threads in [1usize, 4] {
            let model = ThrottleModel {
                per_op: Duration::from_micros(50),
                per_byte: Duration::ZERO,
                sleep: true,
            };
            let be = ThrottledBackend::new(MemoryBackend::new(), model);
            let mut sorter: ExternalSorter<u64> =
                ExternalSorter::new(Arc::new(be), SortOrder::Ascending, 100 * 64, IoStats::new())
                    .with_fan_in(8)
                    .with_block_bytes(256)
                    .with_merge_threads(threads)
                    .with_partition_min_rows(1);
            for &k in &keys {
                sorter.push(Row::new(k, k.to_le_bytes().to_vec())).unwrap();
            }
            let stream = sorter.finish().unwrap();
            if threads > 1 {
                assert!(stream.merge_partitions() >= 2, "merge did not go parallel");
            }
            let rows: Vec<Row<u64>> = stream.collect::<Result<Vec<_>>>().unwrap();
            outputs.push(rows);
        }
        assert_eq!(outputs[0].len(), keys.len());
        assert_eq!(outputs[0], outputs[1], "partitioning changed the sorted output");
    });
}
