//! Overlapped I/O through the merge layer: error propagation from
//! prefetch threads into the loser tree, cancellation of a multi-source
//! merge, and pipeline on/off equivalence of the full external sort.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use histok_sort::{merge_sources_tuned, ExternalSorter, MergeSource, MergeTuning};
use histok_storage::{
    FaultBackend, FaultPlan, IoStats, MemoryBackend, RunCatalog, ThrottleModel, ThrottledBackend,
};
use histok_types::{Error, Result, Row, SortOrder};

const TEST_TIMEOUT: Duration = Duration::from_secs(30);

fn with_watchdog<F: FnOnce() + Send + 'static>(body: F) {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        body();
        let _ = tx.send(());
    });
    match rx.recv_timeout(TEST_TIMEOUT) {
        Ok(()) => handle.join().unwrap(),
        Err(_) => panic!("test body deadlocked (exceeded {TEST_TIMEOUT:?})"),
    }
}

fn write_run(cat: &RunCatalog<u64>, keys: impl Iterator<Item = u64>) {
    let mut w = cat.start_run().unwrap();
    for k in keys {
        w.append(&Row::new(k, vec![0u8; 8])).unwrap();
    }
    cat.register(w.finish().unwrap()).unwrap();
}

#[test]
fn corrupt_run_fails_a_full_prefetched_merge_with_err() {
    with_watchdog(|| {
        let be = FaultBackend::new(
            MemoryBackend::new(),
            // Inside a later block of the first run written.
            FaultPlan { corrupt_write_byte_at: Some(700), ..FaultPlan::none() },
        );
        let cat: Arc<RunCatalog<u64>> = Arc::new(
            RunCatalog::new(Arc::new(be), "c", SortOrder::Ascending, IoStats::new())
                .with_block_bytes(64)
                .with_spill_pipeline(false),
        );
        for r in 0..3u64 {
            write_run(&cat, (0..500).map(|j| j * 3 + r));
        }
        let tuning = MergeTuning::default().with_readahead(2);
        let mut sources = Vec::new();
        for meta in cat.runs() {
            sources.push(histok_sort::open_source(&cat, &meta, &tuning).unwrap());
        }
        let tree = merge_sources_tuned(sources, SortOrder::Ascending, &tuning).unwrap();
        let collected: Result<Vec<Row<u64>>> = tree.collect();
        assert!(matches!(collected, Err(Error::Corrupt(_))), "got {collected:?}");
    });
}

#[test]
fn dropping_a_merge_stream_after_one_row_joins_all_prefetch_threads() {
    with_watchdog(|| {
        // Sleeping throttle: prefetch threads are mid-I/O when cancelled.
        let model = ThrottleModel {
            per_op: Duration::from_micros(200),
            per_byte: Duration::ZERO,
            sleep: true,
        };
        let be = ThrottledBackend::new(MemoryBackend::new(), model);
        let cat: Arc<RunCatalog<u64>> = Arc::new(
            RunCatalog::new(Arc::new(be), "drop", SortOrder::Ascending, IoStats::new())
                .with_block_bytes(32),
        );
        for r in 0..6u64 {
            write_run(&cat, (0..1_000).map(|j| j * 6 + r));
        }
        let tuning = MergeTuning::default().with_readahead(2);
        let mut sources = Vec::new();
        for meta in cat.runs() {
            sources.push(histok_sort::open_source(&cat, &meta, &tuning).unwrap());
        }
        let mut tree = merge_sources_tuned(sources, SortOrder::Ascending, &tuning).unwrap();
        let first = tree.next().unwrap().unwrap();
        assert_eq!(first.key, 0);
        // Dropping the tree drops all six prefetch readers; each must
        // unblock and join its thread. A leak hangs the watchdog.
        drop(tree);
    });
}

#[test]
fn zero_readahead_falls_back_to_synchronous_sources() {
    with_watchdog(|| {
        let cat: Arc<RunCatalog<u64>> = Arc::new(
            RunCatalog::new(
                Arc::new(MemoryBackend::new()),
                "sync",
                SortOrder::Ascending,
                IoStats::new(),
            )
            .with_block_bytes(64),
        );
        write_run(&cat, 0..100);
        let tuning = MergeTuning::default().with_readahead(0);
        let source = histok_sort::open_source(&cat, &cat.runs()[0], &tuning).unwrap();
        assert!(matches!(source, MergeSource::Run(_)));
        let keys: Vec<u64> = merge_sources_tuned(vec![source], SortOrder::Ascending, &tuning)
            .unwrap()
            .map(|r| r.unwrap().key)
            .collect();
        assert_eq!(keys, (0..100).collect::<Vec<_>>());
    });
}

#[test]
fn external_sort_is_identical_with_and_without_overlap() {
    with_watchdog(|| {
        let keys: Vec<u64> = (0..4_000u64).map(|i| (i * 2_654_435_761) % 10_000).collect();
        let mut outputs = Vec::new();
        for overlap in [true, false] {
            let mut sorter: ExternalSorter<u64> = ExternalSorter::new(
                Arc::new(MemoryBackend::new()),
                SortOrder::Ascending,
                100 * 64,
                IoStats::new(),
            )
            .with_fan_in(4)
            .with_block_bytes(256)
            .with_spill_pipeline(overlap)
            .with_tuning(MergeTuning::default().with_readahead(if overlap { 3 } else { 0 }));
            for &k in &keys {
                sorter.push(Row::new(k, k.to_le_bytes().to_vec())).unwrap();
            }
            let rows: Vec<Row<u64>> = sorter.finish().unwrap().collect::<Result<Vec<_>>>().unwrap();
            outputs.push(rows);
        }
        assert_eq!(outputs[0].len(), keys.len());
        assert_eq!(outputs[0], outputs[1], "overlap changed the sorted output");
    });
}
