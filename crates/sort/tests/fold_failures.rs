//! Fault injection on *folded* merges (DESIGN.md §14): a merge that dies
//! mid-write must not leak partially-folded aggregates — the half-written
//! output is deleted, the duplicate-bearing inputs stay intact, and a
//! retry over those inputs still produces exact aggregates (no lost or
//! double-counted duplicates). All bodies run under a watchdog so a
//! wedged merge fails the test instead of hanging CI.

use std::sync::{mpsc, Arc};
use std::time::Duration;

use histok_sort::{
    merge_runs_to_new_tuned, merge_sources_tuned, open_source, FoldSpec, FoldStats, MergeTuning,
};
use histok_storage::{FaultBackend, FaultPlan, FileBackend, IoStats, MemoryBackend, RunCatalog};
use histok_types::{decode_count, AggregateOp, Row, SortOrder};

const TEST_TIMEOUT: Duration = Duration::from_secs(30);

fn with_watchdog<F: FnOnce() + Send + 'static>(body: F) {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        body();
        let _ = tx.send(());
    });
    match rx.recv_timeout(TEST_TIMEOUT) {
        Ok(()) => handle.join().unwrap(),
        Err(_) => panic!("test body deadlocked (exceeded {TEST_TIMEOUT:?})"),
    }
}

/// One COUNT accumulator (count = 1) per key, as run generation would
/// have initialized them.
fn write_count_run(cat: &RunCatalog<u64>, keys: impl Iterator<Item = u64>) {
    let mut w = cat.start_run().unwrap();
    for k in keys {
        w.append(&Row::new(k, 1u64.to_le_bytes().to_vec())).unwrap();
    }
    cat.register(w.finish().unwrap()).unwrap();
}

fn count_fold() -> MergeTuning {
    MergeTuning {
        fold: Some(FoldSpec::new(AggregateOp::Count.aggregator()).with_stats(FoldStats::new())),
        ..MergeTuning::default()
    }
}

#[test]
fn failed_folded_merge_keeps_inputs_and_leaks_no_partial_aggregates() {
    with_watchdog(|| {
        // Two runs holding the same 200 keys: the folded merge collapses
        // them to one accumulator (count 2) per key. Learn the input byte
        // cost on an unfaulted backend first, then trip the fault budget
        // partway through the merge's *output*.
        let input_bytes = {
            let probe = RunCatalog::<u64>::new(
                Arc::new(MemoryBackend::new()),
                "probe",
                SortOrder::Ascending,
                IoStats::new(),
            );
            write_count_run(&probe, 0..200);
            write_count_run(&probe, 0..200);
            probe.stats().snapshot().bytes_written
        };
        let files = FileBackend::temp().unwrap();
        let dir = files.dir().to_path_buf();
        let be = FaultBackend::new(
            files,
            FaultPlan { fail_write_after_bytes: Some(input_bytes + 64), ..FaultPlan::none() },
        );
        let cat = RunCatalog::<u64>::new(
            Arc::new(be.clone()),
            "probe", // same prefix/order ⇒ identical byte layout as the dry run
            SortOrder::Ascending,
            IoStats::new(),
        );
        write_count_run(&cat, 0..200);
        write_count_run(&cat, 0..200);
        let runs = cat.runs();
        let err = merge_runs_to_new_tuned(&cat, &runs, None, None, &count_fold());
        assert!(err.is_err(), "the fault budget must fail the folded merge");
        assert!(be.fault_fired());

        // Inputs stay registered, readable, and UNfolded — every original
        // accumulator still reads count = 1 (a leak of merged counts into
        // a surviving run would double-count on retry).
        assert_eq!(cat.len(), 2);
        for meta in &cat.runs() {
            let rows: Vec<Row<u64>> = cat.open(meta).unwrap().map(|r| r.unwrap()).collect();
            assert_eq!(rows.len(), 200);
            for row in &rows {
                assert_eq!(decode_count(&row.payload), 1, "partial aggregate leaked into input");
            }
        }
        // The half-written folded output is gone from the backend.
        let on_disk = std::fs::read_dir(&dir).unwrap().count();
        assert_eq!(on_disk, 2, "failed folded merge leaked its half-written output");

        // Recovery: a streaming folded merge over the intact inputs (no
        // writes, so the exhausted fault budget is irrelevant) yields the
        // exact aggregates.
        let tuning = count_fold();
        let mut sources = Vec::new();
        for meta in &cat.runs() {
            sources.push(open_source(&cat, meta, &tuning).unwrap());
        }
        let merged: Vec<Row<u64>> = merge_sources_tuned(sources, SortOrder::Ascending, &tuning)
            .unwrap()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(merged.len(), 200, "one folded group per distinct key");
        for (i, row) in merged.iter().enumerate() {
            assert_eq!(row.key, i as u64);
            assert_eq!(decode_count(&row.payload), 2, "key {i} lost or double-counted a row");
        }
    });
}
