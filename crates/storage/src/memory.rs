//! In-memory storage backend.
//!
//! Used by unit tests, property tests and the analytical experiments where
//! real disk traffic would only add noise: the *counts* of rows and bytes
//! spilled are identical to a file-backed execution.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use histok_types::{Error, Result};

use crate::backend::{SpillReader, SpillWriter, StorageBackend};

type Objects = Arc<Mutex<HashMap<String, Arc<Vec<u8>>>>>;

/// A [`StorageBackend`] holding every spill object in a shared map.
///
/// Clones share the same object namespace, so an operator and its test
/// harness can both see the runs.
#[derive(Debug, Clone, Default)]
pub struct MemoryBackend {
    objects: Objects,
}

impl MemoryBackend {
    /// Creates an empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Synonym for [`MemoryBackend::new`] that reads better at call sites
    /// passing the backend to several components.
    pub fn shared() -> Self {
        Self::default()
    }

    /// Number of finished objects currently stored.
    pub fn object_count(&self) -> usize {
        self.objects.lock().len()
    }

    /// Total bytes across all finished objects.
    pub fn total_bytes(&self) -> u64 {
        self.objects.lock().values().map(|v| v.len() as u64).sum()
    }
}

struct MemWriter {
    name: String,
    buf: Vec<u8>,
    objects: Objects,
    finished: bool,
}

impl SpillWriter for MemWriter {
    fn write_all(&mut self, data: &[u8]) -> Result<()> {
        self.buf.extend_from_slice(data);
        Ok(())
    }

    fn finish(&mut self) -> Result<u64> {
        let bytes = self.buf.len() as u64;
        let data = Arc::new(std::mem::take(&mut self.buf));
        self.objects.lock().insert(self.name.clone(), data);
        self.finished = true;
        Ok(bytes)
    }
}

struct MemReader {
    data: Arc<Vec<u8>>,
    pos: usize,
}

impl SpillReader for MemReader {
    fn read_exact(&mut self, buf: &mut [u8]) -> Result<()> {
        let end = self.pos + buf.len();
        if end > self.data.len() {
            return Err(Error::Corrupt(format!(
                "read past end of in-memory object: pos {} + {} > len {}",
                self.pos,
                buf.len(),
                self.data.len()
            )));
        }
        buf.copy_from_slice(&self.data[self.pos..end]);
        self.pos = end;
        Ok(())
    }

    fn skip(&mut self, n: u64) -> Result<()> {
        let end = self.pos + n as usize;
        if end > self.data.len() {
            return Err(Error::Corrupt("skip past end of in-memory object".into()));
        }
        self.pos = end;
        Ok(())
    }
}

impl StorageBackend for MemoryBackend {
    fn create(&self, name: &str) -> Result<Box<dyn SpillWriter>> {
        Ok(Box::new(MemWriter {
            name: name.to_string(),
            buf: Vec::new(),
            objects: self.objects.clone(),
            finished: false,
        }))
    }

    fn open(&self, name: &str) -> Result<Box<dyn SpillReader>> {
        let data = self
            .objects
            .lock()
            .get(name)
            .cloned()
            .ok_or_else(|| Error::Corrupt(format!("no such spill object: {name}")))?;
        Ok(Box::new(MemReader { data, pos: 0 }))
    }

    fn delete(&self, name: &str) -> Result<()> {
        self.objects.lock().remove(name);
        Ok(())
    }

    fn size_of(&self, name: &str) -> Result<u64> {
        self.objects
            .lock()
            .get(name)
            .map(|v| v.len() as u64)
            .ok_or_else(|| Error::Corrupt(format!("no such spill object: {name}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_finish_read_roundtrip() {
        let be = MemoryBackend::new();
        let mut w = be.create("a").unwrap();
        w.write_all(b"hello ").unwrap();
        w.write_all(b"world").unwrap();
        assert_eq!(w.finish().unwrap(), 11);
        assert_eq!(be.size_of("a").unwrap(), 11);

        let mut r = be.open("a").unwrap();
        let mut buf = [0u8; 11];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello world");
        assert!(r.read_exact(&mut [0u8; 1]).is_err());
    }

    #[test]
    fn unfinished_objects_are_invisible() {
        let be = MemoryBackend::new();
        let mut w = be.create("pending").unwrap();
        w.write_all(b"data").unwrap();
        assert!(be.open("pending").is_err());
        drop(w); // abandoning a writer leaves nothing behind
        assert!(be.open("pending").is_err());
        assert_eq!(be.object_count(), 0);
    }

    #[test]
    fn skip_moves_cursor_without_copying() {
        let be = MemoryBackend::new();
        let mut w = be.create("x").unwrap();
        w.write_all(&(0u8..100).collect::<Vec<_>>()).unwrap();
        w.finish().unwrap();
        let mut r = be.open("x").unwrap();
        r.skip(50).unwrap();
        let mut b = [0u8; 1];
        r.read_exact(&mut b).unwrap();
        assert_eq!(b[0], 50);
        assert!(r.skip(1000).is_err());
    }

    #[test]
    fn delete_is_idempotent_and_clones_share_state() {
        let be = MemoryBackend::new();
        let be2 = be.clone();
        let mut w = be.create("r").unwrap();
        w.write_all(b"abc").unwrap();
        w.finish().unwrap();
        assert_eq!(be2.object_count(), 1);
        assert_eq!(be2.total_bytes(), 3);
        be2.delete("r").unwrap();
        be2.delete("r").unwrap(); // second delete is fine
        assert!(be.open("r").is_err());
    }

    #[test]
    fn create_truncates_existing_object() {
        let be = MemoryBackend::new();
        let mut w = be.create("o").unwrap();
        w.write_all(b"long contents").unwrap();
        w.finish().unwrap();
        let mut w = be.create("o").unwrap();
        w.write_all(b"hi").unwrap();
        w.finish().unwrap();
        assert_eq!(be.size_of("o").unwrap(), 2);
    }
}
