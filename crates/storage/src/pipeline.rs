//! Overlapped I/O: the background spill pipeline and the prefetching run
//! reader.
//!
//! The paper's storage is a disaggregated service reached over the network
//! (§2.1): every request costs a round trip. Synchronous spilling and
//! merging therefore *add* that latency to run generation and merge time.
//! The two primitives here hide it instead:
//!
//! * [`SpillPipeline`] — a background writer per open run. The operator
//!   thread appends rows into the active block buffer; on seal it hands
//!   the raw payload to a bounded queue (capacity
//!   [`SPILL_PIPELINE_DEPTH`]) and keeps filling the next block while the
//!   background side CRCs, frames and writes the previous one. A full
//!   queue is the backpressure: when storage is slower than compute, the
//!   operator blocks, bounding memory to ≤2 sealed blocks in flight.
//! * [`PrefetchingRunReader`] — read-ahead per merge input. The background
//!   side reads, CRC-checks and decodes blocks into a bounded buffer of
//!   decoded row batches, so loser-tree refill pops rows that are already
//!   in memory. Up to `readahead_blocks + 1` blocks are buffered in total:
//!   `readahead_blocks` decoded batches in the buffer plus the in-hand
//!   batch the consumer is draining.
//!
//! **Two execution modes.** Both primitives either spawn a dedicated OS
//! thread (the legacy mode, one thread per open run / per merge source) or
//! submit block-sized jobs to a shared [`IoScheduler`](crate::IoScheduler) pool
//! ([`SpillPipeline::spawn_scheduled`] /
//! [`PrefetchingRunReader::spawn_scheduled`]), which bounds the
//! process-wide background thread count to the pool size no matter how
//! many runs and sources are open. Scheduler jobs are state-machine steps:
//! they re-check the component state under its lock, do at most one block
//! of I/O, and *return* instead of blocking, so any pool size ≥ 1 is
//! deadlock-free. Spill jobs run at [`IoPriority::SpillWrite`]; prefetch
//! jobs start at [`IoPriority::Prefetch`] and are escalated to
//! [`IoPriority::MergeReadAhead`] — including jobs already queued — the
//! moment the consumer actually blocks on the source.
//!
//! **Error protocol.** A background step that fails latches its error (a
//! `failed` slot for the pipeline, an in-band `Err` batch for the
//! prefetcher) and stops; the latch unblocks the peer, which surfaces the
//! error on its next `append`/`finish`/`next`. Nothing panics across the
//! boundary and nothing can deadlock: every blocking wait has a live
//! counterpart or a latched terminal state.
//!
//! **Cancellation.** Dropping either wrapper marks the component abandoned,
//! waits out at most one in-flight block job (or joins the legacy thread),
//! and discards any unfinished backend object (same contract as dropping a
//! synchronous `SpillWriter`). A consumer that abandons a merge stream
//! mid-way therefore tears down every prefetch source deterministically.
//!
//! **Accounting.** Background I/O books its storage busy time into a
//! per-component `OverlapLedger`; the compute thread books its blocked
//! intervals both as live `io_wait_ns` and into the same ledger. At
//! component shutdown the ledger settles `busy − wait` (saturating) as
//! `overlapped_io_ns` — the latency genuinely *hidden* from the compute
//! thread — so the two counters never book the same nanoseconds twice and
//! their per-component sum never exceeds the component's wall time.

use std::collections::VecDeque;
use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use histok_types::{Error, Result, Row, RowBatch, SortKey};

use crate::backend::SpillWriter;
use crate::crc::crc32;
use crate::run::{encode_block_header, encode_end_marker, RunReader, BLOCK_HEADER_BYTES};
use crate::scheduler::{lock, wait, IoClass, IoPriority, IoSchedulerHandle, ThreadCensus};
use crate::stats::{IoStats, OverlapLedger};

/// Maximum sealed blocks in flight between the operator thread and the
/// pipeline's background side (double buffering).
pub const SPILL_PIPELINE_DEPTH: usize = 2;

/// What the operator thread ships to the background writer.
enum SpillMsg {
    /// A sealed block payload to CRC, frame and write.
    Block { rows: u32, payload: Vec<u8> },
    /// Write the end marker and finish the backend object.
    Finish,
}

/// Shared state between a scheduled pipeline's producer and its jobs.
struct PipeShared {
    state: Mutex<PipeState>,
    cond: Condvar,
    stats: IoStats,
    ledger: Arc<OverlapLedger>,
}

struct PipeState {
    queue: VecDeque<SpillMsg>,
    /// The backend writer; taken out by the active job while it performs
    /// I/O, consumed by the `Finish` step.
    writer: Option<Box<dyn SpillWriter>>,
    /// Run-file header, written by the first job step.
    header: Option<Vec<u8>>,
    /// True while a pool job owns this component (at most one at a time).
    job_active: bool,
    finished: bool,
    failed: Option<Error>,
    abandoned: bool,
}

/// One scheduler job: drain queued messages until the queue is empty, the
/// run finishes/fails, or the component is abandoned. Never blocks.
fn pipe_job(shared: &Arc<PipeShared>) {
    loop {
        let (msg, writer, header) = {
            let mut st = lock(&shared.state);
            if st.abandoned || st.failed.is_some() {
                // Dropping the writer discards the unfinished object, per
                // the SpillWriter contract.
                st.writer = None;
                st.header = None;
                st.queue.clear();
                st.job_active = false;
                shared.cond.notify_all();
                return;
            }
            let Some(msg) = st.queue.pop_front() else {
                st.job_active = false;
                shared.cond.notify_all();
                return;
            };
            // Queue space freed: a producer blocked on backpressure can go.
            shared.cond.notify_all();
            (msg, st.writer.take(), st.header.take())
        };
        let Some(mut writer) = writer else {
            let mut st = lock(&shared.state);
            st.failed = Some(Error::Io(std::io::Error::other("spill job ran without a writer")));
            st.queue.clear();
            st.job_active = false;
            shared.cond.notify_all();
            return;
        };
        let outcome: Result<bool> = (|| {
            if let Some(h) = header {
                writer.write_all(&h)?;
            }
            match msg {
                SpillMsg::Block { rows, payload } => {
                    let crc = crc32(&payload);
                    let frame = encode_block_header(rows, payload.len() as u32, crc);
                    let started = Instant::now();
                    writer.write_all(&frame)?;
                    writer.write_all(&payload)?;
                    let elapsed = started.elapsed();
                    shared.stats.record_write_timed(
                        u64::from(rows),
                        BLOCK_HEADER_BYTES as u64 + payload.len() as u64,
                        elapsed,
                    );
                    shared.ledger.record_busy(elapsed);
                    Ok(false)
                }
                SpillMsg::Finish => {
                    let started = Instant::now();
                    writer.write_all(&encode_end_marker())?;
                    writer.finish()?;
                    shared.ledger.record_busy(started.elapsed());
                    Ok(true)
                }
            }
        })();
        let mut st = lock(&shared.state);
        match outcome {
            Ok(false) => {
                st.writer = Some(writer);
            }
            Ok(true) => {
                drop(writer);
                st.finished = true;
                st.job_active = false;
                shared.cond.notify_all();
                return;
            }
            Err(e) => {
                drop(writer);
                st.failed = Some(e);
                st.queue.clear();
                st.job_active = false;
                shared.cond.notify_all();
                return;
            }
        }
    }
}

enum PipeMode {
    /// Legacy: a dedicated writer thread per open run.
    Thread {
        tx: Option<SyncSender<SpillMsg>>,
        handle: Option<JoinHandle<()>>,
        error: Arc<Mutex<Option<Error>>>,
    },
    /// Shared pool: block-sized jobs submitted to an [`IoScheduler`].
    Scheduled { shared: Arc<PipeShared>, handle: IoSchedulerHandle, class: IoClass },
}

/// A background writer that turns sealed block payloads into CRC-framed
/// writes against a [`SpillWriter`] — on a dedicated thread
/// ([`SpillPipeline::spawn`]) or a shared scheduler pool
/// ([`SpillPipeline::spawn_scheduled`]). See the module docs for the
/// backpressure, error, cancellation and accounting rules.
pub struct SpillPipeline {
    mode: PipeMode,
    stats: IoStats,
    ledger: Arc<OverlapLedger>,
}

impl SpillPipeline {
    /// Spawns a dedicated writer thread. `header` is written first (the
    /// run-file header), so the operator thread performs no storage
    /// request itself.
    pub fn spawn(writer: Box<dyn SpillWriter>, header: Vec<u8>, stats: IoStats) -> Self {
        let (tx, rx) = sync_channel::<SpillMsg>(SPILL_PIPELINE_DEPTH);
        let error = Arc::new(Mutex::new(None));
        let latch = error.clone();
        let ledger = OverlapLedger::new(stats.clone());
        let thread_stats = stats.clone();
        let thread_ledger = ledger.clone();
        let handle = std::thread::spawn(move || {
            let _census = ThreadCensus::register();
            if let Err(e) = run_writer_thread(writer, header, rx, &thread_stats, &thread_ledger) {
                *lock(&latch) = Some(e);
                // Returning drops `rx`: the operator's next `send` fails
                // and surfaces the latched error.
            }
        });
        SpillPipeline {
            mode: PipeMode::Thread { tx: Some(tx), handle: Some(handle), error },
            stats,
            ledger,
        }
    }

    /// As [`SpillPipeline::spawn`], but the writes run as
    /// [`IoPriority::SpillWrite`] jobs on `scheduler`'s pool instead of a
    /// dedicated thread.
    pub fn spawn_scheduled(
        writer: Box<dyn SpillWriter>,
        header: Vec<u8>,
        stats: IoStats,
        scheduler: IoSchedulerHandle,
    ) -> Self {
        let ledger = OverlapLedger::new(stats.clone());
        let shared = Arc::new(PipeShared {
            state: Mutex::new(PipeState {
                queue: VecDeque::new(),
                writer: Some(writer),
                header: Some(header),
                job_active: false,
                finished: false,
                failed: None,
                abandoned: false,
            }),
            cond: Condvar::new(),
            stats: stats.clone(),
            ledger: ledger.clone(),
        });
        let class = IoClass::new(IoPriority::SpillWrite);
        SpillPipeline {
            mode: PipeMode::Scheduled { shared, handle: scheduler, class },
            stats,
            ledger,
        }
    }

    /// Queues one sealed block. Blocks while [`SPILL_PIPELINE_DEPTH`]
    /// blocks are already in flight (backpressure); the blocked time is
    /// booked as compute-side I/O wait.
    pub fn write_block(&mut self, rows: u32, payload: Vec<u8>) -> Result<()> {
        match &mut self.mode {
            PipeMode::Thread { tx, error, .. } => {
                let Some(tx) = tx else {
                    return Err(take_error(error));
                };
                let started = Instant::now();
                let sent = tx.send(SpillMsg::Block { rows, payload });
                let waited = started.elapsed();
                self.stats.record_io_wait(waited);
                self.ledger.record_wait(waited);
                if sent.is_err() {
                    return Err(take_error(error));
                }
                Ok(())
            }
            PipeMode::Scheduled { shared, handle, class } => {
                let started = Instant::now();
                let mut st = lock(&shared.state);
                while st.queue.len() >= SPILL_PIPELINE_DEPTH && st.failed.is_none() {
                    st = wait(&shared.cond, st);
                }
                let waited = started.elapsed();
                self.stats.record_io_wait(waited);
                self.ledger.record_wait(waited);
                if let Some(e) = st.failed.take() {
                    return Err(e);
                }
                if st.finished {
                    return Err(Error::Io(std::io::Error::other("write after pipeline finish")));
                }
                st.queue.push_back(SpillMsg::Block { rows, payload });
                if !st.job_active {
                    st.job_active = true;
                    let shared = shared.clone();
                    handle.submit(class, move || pipe_job(&shared));
                }
                Ok(())
            }
        }
    }

    /// Writes the end marker, finishes the backend object, waits out the
    /// background side, and surfaces any latched error. The wait (drain +
    /// completion) is booked as compute-side I/O wait; the component's
    /// overlap ledger settles here.
    pub fn finish(&mut self) -> Result<()> {
        let result = match &mut self.mode {
            PipeMode::Thread { tx, handle, error } => {
                let started = Instant::now();
                if let Some(tx) = tx.take() {
                    // A send failure means the thread already died on a
                    // latched error; the join below surfaces it.
                    let _ = tx.send(SpillMsg::Finish);
                }
                if let Some(handle) = handle.take() {
                    let _ = handle.join();
                }
                let waited = started.elapsed();
                self.stats.record_io_wait(waited);
                self.ledger.record_wait(waited);
                match lock(error).take() {
                    Some(e) => Err(e),
                    None => Ok(()),
                }
            }
            PipeMode::Scheduled { shared, handle, class } => {
                let started = Instant::now();
                let mut st = lock(&shared.state);
                if !st.finished && st.failed.is_none() {
                    st.queue.push_back(SpillMsg::Finish);
                    if !st.job_active {
                        st.job_active = true;
                        let job = shared.clone();
                        handle.submit(class, move || pipe_job(&job));
                    }
                }
                while st.job_active || (!st.finished && st.failed.is_none()) {
                    st = wait(&shared.cond, st);
                }
                let result = match st.failed.take() {
                    Some(e) => Err(e),
                    None => Ok(()),
                };
                drop(st);
                let waited = started.elapsed();
                self.stats.record_io_wait(waited);
                self.ledger.record_wait(waited);
                result
            }
        };
        self.ledger.settle();
        result
    }
}

fn take_error(error: &Arc<Mutex<Option<Error>>>) -> Error {
    lock(error)
        .take()
        .unwrap_or_else(|| Error::Io(std::io::Error::other("spill pipeline thread terminated")))
}

impl Drop for SpillPipeline {
    fn drop(&mut self) {
        match &mut self.mode {
            PipeMode::Thread { tx, handle, .. } => {
                // Disconnect without `Finish`: the thread abandons the run
                // (the backend object is never finished, matching a dropped
                // synchronous writer) and exits; then join so no thread
                // leaks.
                tx.take();
                if let Some(handle) = handle.take() {
                    let _ = handle.join();
                }
            }
            PipeMode::Scheduled { shared, .. } => {
                let mut st = lock(&shared.state);
                st.abandoned = true;
                st.queue.clear();
                st.writer = None;
                st.header = None;
                shared.cond.notify_all();
                // Wait out at most one in-flight block job so nothing
                // touches the component after it is gone.
                while st.job_active {
                    st = wait(&shared.cond, st);
                }
            }
        }
        self.ledger.settle();
    }
}

/// The legacy pipeline thread body: header first, then blocks until
/// `Finish` or disconnect. Storage busy time lands in the component ledger.
fn run_writer_thread(
    mut writer: Box<dyn SpillWriter>,
    header: Vec<u8>,
    rx: Receiver<SpillMsg>,
    stats: &IoStats,
    ledger: &OverlapLedger,
) -> Result<()> {
    writer.write_all(&header)?;
    while let Ok(msg) = rx.recv() {
        match msg {
            SpillMsg::Block { rows, payload } => {
                let crc = crc32(&payload);
                let frame = encode_block_header(rows, payload.len() as u32, crc);
                let started = Instant::now();
                writer.write_all(&frame)?;
                writer.write_all(&payload)?;
                let elapsed = started.elapsed();
                stats.record_write_timed(
                    u64::from(rows),
                    BLOCK_HEADER_BYTES as u64 + payload.len() as u64,
                    elapsed,
                );
                ledger.record_busy(elapsed);
            }
            SpillMsg::Finish => {
                let started = Instant::now();
                writer.write_all(&encode_end_marker())?;
                writer.finish()?;
                ledger.record_busy(started.elapsed());
                return Ok(());
            }
        }
    }
    // Disconnected without `Finish`: the run was abandoned. Dropping the
    // writer discards the object, per the SpillWriter contract.
    Ok(())
}

/// Shared state between a scheduled prefetcher's consumer and its jobs.
struct PrefetchShared<K: SortKey> {
    state: Mutex<PrefetchState<K>>,
    cond: Condvar,
}

struct PrefetchState<K: SortKey> {
    /// Decoded batches (or one trailing in-band error) awaiting the
    /// consumer; bounded at `cap`.
    ready: VecDeque<Result<RowBatch<K>>>,
    /// The underlying reader; taken out by the active job during I/O,
    /// dropped at end of run.
    reader: Option<RunReader<K>>,
    cap: usize,
    job_active: bool,
    eof: bool,
    dropped: bool,
}

/// One scheduler job: decode blocks until the buffer is full, the run
/// ends/fails, or the consumer is gone. Never blocks.
fn prefetch_job<K: SortKey>(shared: &Arc<PrefetchShared<K>>) {
    loop {
        let mut reader = {
            let mut st = lock(&shared.state);
            if st.dropped {
                st.reader = None;
                st.ready.clear();
                st.job_active = false;
                shared.cond.notify_all();
                return;
            }
            if st.eof || st.ready.len() >= st.cap {
                st.job_active = false;
                shared.cond.notify_all();
                return;
            }
            match st.reader.take() {
                Some(reader) => reader,
                None => {
                    st.job_active = false;
                    shared.cond.notify_all();
                    return;
                }
            }
        };
        let res = reader.next_batch();
        let mut st = lock(&shared.state);
        match res {
            Ok(Some(batch)) => {
                st.ready.push_back(Ok(batch));
                st.reader = Some(reader);
            }
            Ok(None) => st.eof = true,
            Err(e) => {
                st.ready.push_back(Err(e));
                st.eof = true;
            }
        }
        shared.cond.notify_all();
    }
}

enum PrefetchMode<K: SortKey> {
    /// Legacy: a dedicated read-ahead thread per merge source.
    Thread { rx: Option<Receiver<Result<RowBatch<K>>>>, handle: Option<JoinHandle<()>> },
    /// Shared pool: block-sized decode jobs on an [`IoScheduler`].
    Scheduled { shared: Arc<PrefetchShared<K>>, handle: IoSchedulerHandle, class: IoClass },
}

/// A [`RunReader`] driven by bounded background read-ahead — a dedicated
/// thread ([`PrefetchingRunReader::spawn`]) or shared-pool jobs
/// ([`PrefetchingRunReader::spawn_scheduled`]).
///
/// The background side reads, CRC-checks and decodes up to
/// `readahead_blocks` batches ahead (so `readahead_blocks + 1` blocks are
/// buffered in total, counting the in-hand batch); `next` pops rows from
/// the current decoded batch and only waits at batch boundaries. Errors
/// arrive in-band and fuse the iterator; dropping the reader mid-stream
/// tears the background side down (see the module docs).
pub struct PrefetchingRunReader<K: SortKey> {
    mode: PrefetchMode<K>,
    current: VecDeque<Row<K>>,
    stats: IoStats,
    ledger: Arc<OverlapLedger>,
    done: bool,
    rows_yielded: u64,
}

impl<K: SortKey> PrefetchingRunReader<K> {
    /// Takes ownership of `reader` (which may be mid-run, e.g. positioned
    /// by `skip_rows`) and starts a dedicated thread prefetching up to
    /// `readahead_blocks` decoded blocks ahead of the consumer.
    pub fn spawn(mut reader: RunReader<K>, readahead_blocks: usize) -> Self {
        let stats = reader.stats().clone();
        let ledger = OverlapLedger::new(stats.clone());
        reader.set_ledger(Some(ledger.clone()));
        let (tx, rx) = sync_channel::<Result<RowBatch<K>>>(readahead_blocks.max(1));
        let handle = std::thread::spawn(move || {
            let _census = ThreadCensus::register();
            loop {
                match reader.next_batch() {
                    Ok(Some(batch)) => {
                        if tx.send(Ok(batch)).is_err() {
                            return; // consumer dropped: stop prefetching
                        }
                    }
                    Ok(None) => return, // end of run: dropping tx signals it
                    Err(e) => {
                        let _ = tx.send(Err(e));
                        return;
                    }
                }
            }
        });
        PrefetchingRunReader {
            mode: PrefetchMode::Thread { rx: Some(rx), handle: Some(handle) },
            current: VecDeque::new(),
            stats,
            ledger,
            done: false,
            rows_yielded: 0,
        }
    }

    /// As [`PrefetchingRunReader::spawn`], but the decode work runs as
    /// jobs on `scheduler`'s pool. Jobs start at [`IoPriority::Prefetch`]
    /// and are escalated to [`IoPriority::MergeReadAhead`] once the
    /// consumer blocks on this source.
    pub fn spawn_scheduled(
        mut reader: RunReader<K>,
        readahead_blocks: usize,
        scheduler: IoSchedulerHandle,
    ) -> Self {
        let stats = reader.stats().clone();
        let ledger = OverlapLedger::new(stats.clone());
        reader.set_ledger(Some(ledger.clone()));
        let shared = Arc::new(PrefetchShared {
            state: Mutex::new(PrefetchState {
                ready: VecDeque::new(),
                reader: Some(reader),
                cap: readahead_blocks.max(1),
                job_active: true,
                eof: false,
                dropped: false,
            }),
            cond: Condvar::new(),
        });
        let class = IoClass::new(IoPriority::Prefetch);
        let job = shared.clone();
        scheduler.submit(&class, move || prefetch_job(&job));
        PrefetchingRunReader {
            mode: PrefetchMode::Scheduled { shared, handle: scheduler, class },
            current: VecDeque::new(),
            stats,
            ledger,
            done: false,
            rows_yielded: 0,
        }
    }

    /// Rows yielded so far.
    pub fn rows_yielded(&self) -> u64 {
        self.rows_yielded
    }

    /// The next decoded batch (rows plus prefix column), `Ok(None)` at end
    /// of run. Errors fuse the reader and tear down the background side.
    /// This is the batched merge loop's pull: a whole prefetched block
    /// changes hands per call, prefix column included.
    pub fn next_batch(&mut self) -> Result<Option<RowBatch<K>>> {
        if !self.current.is_empty() {
            // Rows buffered by a previous row-at-a-time `next` call: drain
            // them first so the two pull styles compose (cold path).
            let rows: Vec<Row<K>> = std::mem::take(&mut self.current).into();
            self.rows_yielded += rows.len() as u64;
            return Ok(Some(RowBatch::from_rows(rows)));
        }
        if self.done {
            return Ok(None);
        }
        match self.recv_batch() {
            Some(Ok(batch)) => {
                self.rows_yielded += batch.len() as u64;
                Ok(Some(batch))
            }
            Some(Err(e)) => {
                self.done = true;
                self.shut_down();
                Err(e)
            }
            None => {
                self.done = true;
                self.shut_down();
                Ok(None)
            }
        }
    }

    /// The next batch from the background side (or in-band error), `None`
    /// at end of run. Only the blocked time counts as compute-side wait;
    /// the read and decode themselves were booked by the background side.
    fn recv_batch(&mut self) -> Option<Result<RowBatch<K>>> {
        match &mut self.mode {
            PrefetchMode::Thread { rx, .. } => {
                let rx = rx.as_ref()?;
                let started = Instant::now();
                let msg = rx.recv();
                let waited = started.elapsed();
                self.stats.record_io_wait(waited);
                self.ledger.record_wait(waited);
                msg.ok() // a disconnect is a clean end of run
            }
            PrefetchMode::Scheduled { shared, handle, class } => {
                let mut st = lock(&shared.state);
                loop {
                    if let Some(item) = st.ready.pop_front() {
                        // Buffer space freed: restart the fill if needed.
                        if !st.job_active && !st.eof && st.reader.is_some() {
                            st.job_active = true;
                            let job = shared.clone();
                            handle.submit(class, move || prefetch_job(&job));
                        }
                        return Some(item);
                    }
                    if st.eof {
                        return None;
                    }
                    // The consumer is now blocked on this source: escalate
                    // its jobs — including any already queued — so the pool
                    // serves a draining merge input before speculation.
                    class.set(IoPriority::MergeReadAhead);
                    if !st.job_active && st.reader.is_some() {
                        st.job_active = true;
                        let job = shared.clone();
                        handle.submit(class, move || prefetch_job(&job));
                    }
                    let started = Instant::now();
                    st = wait(&shared.cond, st);
                    let waited = started.elapsed();
                    self.stats.record_io_wait(waited);
                    self.ledger.record_wait(waited);
                }
            }
        }
    }

    /// Tears down the background side and settles the overlap ledger.
    fn shut_down(&mut self) {
        match &mut self.mode {
            PrefetchMode::Thread { rx, handle } => {
                // Drop the channel (unblocking a thread stuck in `send`),
                // then join.
                rx.take();
                if let Some(handle) = handle.take() {
                    let _ = handle.join();
                }
            }
            PrefetchMode::Scheduled { shared, .. } => {
                let mut st = lock(&shared.state);
                st.dropped = true;
                st.ready.clear();
                st.reader = None;
                shared.cond.notify_all();
                while st.job_active {
                    st = wait(&shared.cond, st);
                }
            }
        }
        self.ledger.settle();
    }
}

impl<K: SortKey> Iterator for PrefetchingRunReader<K> {
    type Item = Result<Row<K>>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(row) = self.current.pop_front() {
                self.rows_yielded += 1;
                return Some(Ok(row));
            }
            if self.done {
                return None;
            }
            match self.recv_batch() {
                Some(Ok(batch)) => self.current = batch.rows.into(),
                Some(Err(e)) => {
                    self.done = true;
                    self.shut_down();
                    return Some(Err(e));
                }
                None => {
                    self.done = true;
                    self.shut_down();
                    return None;
                }
            }
        }
    }
}

impl<K: SortKey> Drop for PrefetchingRunReader<K> {
    fn drop(&mut self) {
        self.shut_down();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::StorageBackend;
    use crate::memory::MemoryBackend;
    use crate::run::RunWriter;
    use crate::scheduler::IoScheduler;
    use crate::throttle::{ThrottleModel, ThrottledBackend};
    use histok_types::SortOrder;
    use std::time::Duration;

    fn write_run(
        be: &MemoryBackend,
        name: &str,
        keys: std::ops::Range<u64>,
        block_bytes: usize,
        pipelined: bool,
    ) -> crate::run::RunMeta<u64> {
        let mut w = RunWriter::with_options(
            be,
            name,
            SortOrder::Ascending,
            IoStats::new(),
            block_bytes,
            pipelined,
        )
        .unwrap();
        for k in keys {
            w.append(&Row::new(k, vec![k as u8; 5])).unwrap();
        }
        w.finish().unwrap()
    }

    fn write_run_scheduled(
        be: &MemoryBackend,
        name: &str,
        keys: std::ops::Range<u64>,
        block_bytes: usize,
        sched: &IoScheduler,
    ) -> crate::run::RunMeta<u64> {
        let mut w: RunWriter<u64> = RunWriter::with_io(
            be,
            name,
            SortOrder::Ascending,
            IoStats::new(),
            block_bytes,
            true,
            Some(sched.handle()),
        )
        .unwrap();
        for k in keys {
            w.append(&Row::new(k, vec![k as u8; 5])).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn pipelined_and_sync_runs_are_byte_identical() {
        let be = MemoryBackend::new();
        let sync = write_run(&be, "sync", 0..500, 128, false);
        let piped = write_run(&be, "piped", 0..500, 128, true);
        assert_eq!(sync.rows, piped.rows);
        assert_eq!(sync.bytes, piped.bytes);
        assert_eq!(sync.blocks, piped.blocks);
        let mut a = vec![0u8; sync.bytes as usize];
        let mut b = vec![0u8; piped.bytes as usize];
        be.open("sync").unwrap().read_exact(&mut a).unwrap();
        be.open("piped").unwrap().read_exact(&mut b).unwrap();
        assert_eq!(a, b, "pipelined spill changed the on-storage bytes");
    }

    #[test]
    fn scheduled_and_thread_pipelines_are_byte_identical() {
        let be = MemoryBackend::new();
        let sched = IoScheduler::new(2);
        let piped = write_run(&be, "piped", 0..500, 128, true);
        let pooled = write_run_scheduled(&be, "pooled", 0..500, 128, &sched);
        assert_eq!(piped.rows, pooled.rows);
        assert_eq!(piped.bytes, pooled.bytes);
        assert_eq!(piped.blocks, pooled.blocks);
        let mut a = vec![0u8; piped.bytes as usize];
        let mut b = vec![0u8; pooled.bytes as usize];
        be.open("piped").unwrap().read_exact(&mut a).unwrap();
        be.open("pooled").unwrap().read_exact(&mut b).unwrap();
        assert_eq!(a, b, "scheduled spill changed the on-storage bytes");
        assert!(sched.metrics().submitted[IoPriority::SpillWrite as usize] > 0);
    }

    /// A slow producer over a throttled backend: the writer keeps up, so
    /// nearly all of its storage busy time is genuinely hidden and must
    /// settle as overlapped I/O — while the per-component invariant
    /// `io_wait + overlapped ≤ wall` holds.
    #[test]
    fn pipelined_writer_records_overlapped_io() {
        let model = ThrottleModel {
            per_op: Duration::from_micros(200),
            per_byte: Duration::ZERO,
            sleep: true,
        };
        let be = ThrottledBackend::new(MemoryBackend::new(), model);
        let stats = IoStats::new();
        let started = Instant::now();
        let mut w: RunWriter<u64> =
            RunWriter::with_options(&be, "ov", SortOrder::Ascending, stats.clone(), 64, true)
                .unwrap();
        for k in 0..40u64 {
            w.append(&Row::key_only(k)).unwrap();
            // Compute "work" between appends so the writer thread drains
            // the queue and its sleeps overlap with this.
            std::thread::sleep(Duration::from_micros(300));
        }
        w.finish().unwrap();
        let wall = started.elapsed().as_nanos() as u64;
        let snap = stats.snapshot();
        assert!(snap.write_ops > 1);
        assert!(snap.overlapped_io_ns > 0, "pipeline writes should book overlapped time");
        assert_eq!(snap.rows_written, 40);
        assert!(
            snap.io_wait_ns + snap.overlapped_io_ns <= wall,
            "io_wait {} + overlapped {} must not exceed wall {wall}",
            snap.io_wait_ns,
            snap.overlapped_io_ns,
        );
    }

    /// Regression for the finish() double-count: the drain+join interval
    /// must not be booked as io_wait *and* overlapped. A fast producer over
    /// a slow backend maximizes the drain, which the old accounting
    /// double-counted past wall time.
    #[test]
    fn wait_and_overlap_never_double_count_the_finish_drain() {
        for scheduled in [false, true] {
            let sched = IoScheduler::new(1);
            let model = ThrottleModel {
                per_op: Duration::from_micros(400),
                per_byte: Duration::ZERO,
                sleep: true,
            };
            let be = ThrottledBackend::new(MemoryBackend::new(), model);
            let stats = IoStats::new();
            let started = Instant::now();
            let mut w: RunWriter<u64> = RunWriter::with_io(
                &be,
                "dc",
                SortOrder::Ascending,
                stats.clone(),
                64,
                true,
                scheduled.then(|| sched.handle()),
            )
            .unwrap();
            // Push everything at once: the pipeline queue fills and finish()
            // has a long drain to sit out.
            for k in 0..60u64 {
                w.append(&Row::key_only(k)).unwrap();
            }
            w.finish().unwrap();
            let wall = started.elapsed().as_nanos() as u64;
            let snap = stats.snapshot();
            assert!(snap.io_wait_ns > 0, "a saturated pipeline must book wait");
            assert!(
                snap.io_wait_ns + snap.overlapped_io_ns <= wall,
                "scheduled={scheduled}: io_wait {} + overlapped {} exceeds wall {wall}",
                snap.io_wait_ns,
                snap.overlapped_io_ns,
            );
        }
    }

    #[test]
    fn prefetching_reader_yields_identical_rows() {
        let be = MemoryBackend::new();
        let meta = write_run(&be, "pf", 0..1000, 96, true);
        let plain: Vec<u64> =
            RunReader::open(&be, &meta, IoStats::new()).unwrap().map(|r| r.unwrap().key).collect();
        let reader = RunReader::open(&be, &meta, IoStats::new()).unwrap();
        let mut pf = PrefetchingRunReader::spawn(reader, 2);
        let fetched: Vec<u64> = pf.by_ref().map(|r| r.unwrap().key).collect();
        assert_eq!(plain, fetched);
        assert_eq!(pf.rows_yielded(), 1000);
    }

    #[test]
    fn scheduled_prefetcher_yields_identical_rows() {
        let be = MemoryBackend::new();
        let sched = IoScheduler::new(2);
        let meta = write_run(&be, "spf", 0..1000, 96, false);
        let plain: Vec<u64> =
            RunReader::open(&be, &meta, IoStats::new()).unwrap().map(|r| r.unwrap().key).collect();
        let reader = RunReader::open(&be, &meta, IoStats::new()).unwrap();
        let mut pf = PrefetchingRunReader::spawn_scheduled(reader, 2, sched.handle());
        let fetched: Vec<u64> = pf.by_ref().map(|r| r.unwrap().key).collect();
        assert_eq!(plain, fetched);
        assert_eq!(pf.rows_yielded(), 1000);
        let m = sched.metrics();
        assert!(m.submitted_total() > 0, "prefetch must run through the pool");
    }

    #[test]
    fn prefetching_reader_resumes_after_skip() {
        let be = MemoryBackend::new();
        let meta = write_run(&be, "sk", 0..600, 128, false);
        let stats = IoStats::new();
        let mut reader = RunReader::open(&be, &meta, stats.clone()).unwrap();
        reader.skip_rows(450).unwrap();
        let rest: Vec<u64> =
            PrefetchingRunReader::spawn(reader, 3).map(|r| r.unwrap().key).collect();
        assert_eq!(rest, (450..600).collect::<Vec<_>>());
        let snap = stats.snapshot();
        assert!(snap.blocks_skipped > 0, "whole-block skips should be counted");
        assert!(snap.bytes_skipped > 0);
    }

    #[test]
    fn dropping_a_prefetching_reader_joins_its_thread() {
        let be = MemoryBackend::new();
        // Many small blocks so the prefetch thread is still mid-run (or
        // blocked on its full channel) when the consumer walks away.
        let meta = write_run(&be, "drop", 0..2000, 32, false);
        let reader = RunReader::open(&be, &meta, IoStats::new()).unwrap();
        let mut pf = PrefetchingRunReader::spawn(reader, 1);
        let first = pf.next().unwrap().unwrap();
        assert_eq!(first.key, 0);
        drop(pf); // must not deadlock; Drop joins the thread
    }

    #[test]
    fn dropping_a_scheduled_prefetcher_cancels_its_jobs() {
        let be = MemoryBackend::new();
        let sched = IoScheduler::new(1);
        let meta = write_run(&be, "sdrop", 0..2000, 32, false);
        let reader = RunReader::open(&be, &meta, IoStats::new()).unwrap();
        let mut pf = PrefetchingRunReader::spawn_scheduled(reader, 1, sched.handle());
        let first = pf.next().unwrap().unwrap();
        assert_eq!(first.key, 0);
        drop(pf); // must not deadlock and must not leave a runaway job
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let m = sched.metrics();
            if m.queue_depth == 0 && m.completed_total() == m.submitted_total() {
                break;
            }
            assert!(Instant::now() < deadline, "prefetch jobs leaked after drop");
            std::thread::yield_now();
        }
    }

    #[test]
    fn abandoned_pipelined_run_discards_the_object() {
        let be = MemoryBackend::new();
        let mut w: RunWriter<u64> =
            RunWriter::with_options(&be, "gone", SortOrder::Ascending, IoStats::new(), 64, true)
                .unwrap();
        for k in 0..100u64 {
            w.append(&Row::key_only(k)).unwrap();
        }
        drop(w); // no finish: the pipeline must shut down and not leak
                 // The object was never finished, so it must not be readable.
        assert!(RunReader::<u64>::open_named(&be, "gone", IoStats::new()).is_err());
    }

    #[test]
    fn abandoned_scheduled_run_discards_the_object() {
        let be = MemoryBackend::new();
        let sched = IoScheduler::new(1);
        let mut w: RunWriter<u64> = RunWriter::with_io(
            &be,
            "sgone",
            SortOrder::Ascending,
            IoStats::new(),
            64,
            true,
            Some(sched.handle()),
        )
        .unwrap();
        for k in 0..100u64 {
            w.append(&Row::key_only(k)).unwrap();
        }
        drop(w); // no finish: the job must drop the writer, discarding it
        assert!(RunReader::<u64>::open_named(&be, "sgone", IoStats::new()).is_err());
    }
}
