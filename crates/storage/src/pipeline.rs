//! Overlapped I/O: the background spill pipeline and the prefetching run
//! reader.
//!
//! The paper's storage is a disaggregated service reached over the network
//! (§2.1): every request costs a round trip. Synchronous spilling and
//! merging therefore *add* that latency to run generation and merge time.
//! The two primitives here hide it instead:
//!
//! * [`SpillPipeline`] — a dedicated writer thread per open run. The
//!   operator thread appends rows into the active block buffer; on seal it
//!   hands the raw payload over a bounded channel (capacity
//!   [`SPILL_PIPELINE_DEPTH`]) and keeps filling the next block while the
//!   pipeline thread CRCs, frames and writes the previous one. A full
//!   channel is the backpressure: when storage is slower than compute, the
//!   operator blocks in `send`, bounding memory to ≤2 sealed blocks in
//!   flight.
//! * [`PrefetchingRunReader`] — a read-ahead thread per merge input. It
//!   reads, CRC-checks and decodes up to `readahead_blocks` blocks ahead
//!   into a bounded channel of decoded row batches, so loser-tree refill
//!   pops rows that are already in memory.
//!
//! **Error protocol.** An I/O thread that fails latches its error (a
//! `Mutex<Option<Error>>` for the pipeline, an in-band `Err` message for
//! the prefetcher) and exits, dropping its channel endpoint. The channel
//! disconnect unblocks the peer, which surfaces the latched error on its
//! next `append`/`finish`/`next`. Nothing panics across the boundary and
//! nothing can deadlock: every blocking channel operation has a live peer
//! or a disconnect.
//!
//! **Cancellation.** Dropping either wrapper first drops its channel
//! endpoint — unblocking a thread stuck in `send`/`recv` — and then joins
//! the thread. A consumer that abandons a merge stream mid-way therefore
//! tears down every prefetch thread deterministically, and an abandoned
//! pipelined run is discarded without finishing its backend object (same
//! contract as dropping a synchronous `SpillWriter`).

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::Mutex;
use std::sync::Arc;

use histok_types::{Error, Result, Row, SortKey};

use crate::backend::SpillWriter;
use crate::crc::crc32;
use crate::run::{encode_block_header, encode_end_marker, RunReader, BLOCK_HEADER_BYTES};
use crate::stats::IoStats;

/// Maximum sealed blocks in flight between the operator thread and the
/// pipeline's writer thread (double buffering).
pub const SPILL_PIPELINE_DEPTH: usize = 2;

/// What the operator thread ships to the writer thread.
enum SpillMsg {
    /// A sealed block payload to CRC, frame and write.
    Block { rows: u32, payload: Vec<u8> },
    /// Write the end marker and finish the backend object.
    Finish,
}

/// A background writer thread that turns sealed block payloads into
/// CRC-framed writes against a [`SpillWriter`]. See the module docs for
/// the backpressure, error and cancellation rules.
pub struct SpillPipeline {
    tx: Option<SyncSender<SpillMsg>>,
    handle: Option<JoinHandle<()>>,
    error: Arc<Mutex<Option<Error>>>,
    stats: IoStats,
}

impl SpillPipeline {
    /// Spawns the writer thread. `header` is written first (the run-file
    /// header), so the operator thread performs no storage request itself.
    pub fn spawn(writer: Box<dyn SpillWriter>, header: Vec<u8>, stats: IoStats) -> Self {
        let (tx, rx) = sync_channel::<SpillMsg>(SPILL_PIPELINE_DEPTH);
        let error = Arc::new(Mutex::new(None));
        let latch = error.clone();
        let thread_stats = stats.clone();
        let handle = std::thread::spawn(move || {
            if let Err(e) = run_writer_thread(writer, header, rx, &thread_stats) {
                *latch.lock() = Some(e);
                // Returning drops `rx`: the operator's next `send` fails
                // and surfaces the latched error.
            }
        });
        SpillPipeline { tx: Some(tx), handle: Some(handle), error, stats }
    }

    /// Queues one sealed block. Blocks while [`SPILL_PIPELINE_DEPTH`]
    /// blocks are already in flight (backpressure); the blocked time is
    /// booked as compute-side I/O wait.
    pub fn write_block(&mut self, rows: u32, payload: Vec<u8>) -> Result<()> {
        let Some(tx) = &self.tx else {
            return Err(self.take_error());
        };
        let started = Instant::now();
        let sent = tx.send(SpillMsg::Block { rows, payload });
        self.stats.record_io_wait(started.elapsed());
        if sent.is_err() {
            return Err(self.take_error());
        }
        Ok(())
    }

    /// Writes the end marker, finishes the backend object, joins the
    /// thread, and surfaces any latched error. The wait (drain + join) is
    /// booked as compute-side I/O wait.
    pub fn finish(&mut self) -> Result<()> {
        let started = Instant::now();
        if let Some(tx) = self.tx.take() {
            // A send failure means the thread already died on a latched
            // error; the join below surfaces it.
            let _ = tx.send(SpillMsg::Finish);
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
        self.stats.record_io_wait(started.elapsed());
        match self.error.lock().take() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn take_error(&self) -> Error {
        self.error
            .lock()
            .take()
            .unwrap_or_else(|| Error::Io(std::io::Error::other("spill pipeline thread terminated")))
    }
}

impl Drop for SpillPipeline {
    fn drop(&mut self) {
        // Disconnect without `Finish`: the thread abandons the run (the
        // backend object is never finished, matching a dropped synchronous
        // writer) and exits; then join so no thread leaks.
        self.tx.take();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// The pipeline thread body: header first, then blocks until `Finish` or
/// disconnect. All write latency recorded here is overlapped I/O.
fn run_writer_thread(
    mut writer: Box<dyn SpillWriter>,
    header: Vec<u8>,
    rx: Receiver<SpillMsg>,
    stats: &IoStats,
) -> Result<()> {
    writer.write_all(&header)?;
    while let Ok(msg) = rx.recv() {
        match msg {
            SpillMsg::Block { rows, payload } => {
                let crc = crc32(&payload);
                let frame = encode_block_header(rows, payload.len() as u32, crc);
                let started = Instant::now();
                writer.write_all(&frame)?;
                writer.write_all(&payload)?;
                let elapsed = started.elapsed();
                stats.record_write_timed(
                    u64::from(rows),
                    BLOCK_HEADER_BYTES as u64 + payload.len() as u64,
                    elapsed,
                );
                stats.record_overlapped_io(elapsed);
            }
            SpillMsg::Finish => {
                let started = Instant::now();
                writer.write_all(&encode_end_marker())?;
                writer.finish()?;
                stats.record_overlapped_io(started.elapsed());
                return Ok(());
            }
        }
    }
    // Disconnected without `Finish`: the run was abandoned. Dropping the
    // writer discards the object, per the SpillWriter contract.
    Ok(())
}

/// A [`RunReader`] driven by a bounded read-ahead thread.
///
/// The thread reads, CRC-checks and decodes up to `readahead_blocks`
/// blocks ahead; `next` pops rows from the current decoded batch and only
/// touches the channel at batch boundaries. Errors arrive in-band and fuse
/// the iterator; dropping the reader mid-stream joins the thread (see the
/// module docs).
pub struct PrefetchingRunReader<K: SortKey> {
    rx: Option<Receiver<Result<Vec<Row<K>>>>>,
    handle: Option<JoinHandle<()>>,
    current: std::collections::VecDeque<Row<K>>,
    stats: IoStats,
    done: bool,
    rows_yielded: u64,
}

impl<K: SortKey> PrefetchingRunReader<K> {
    /// Takes ownership of `reader` (which may be mid-run, e.g. positioned
    /// by `skip_rows`) and starts prefetching up to `readahead_blocks`
    /// decoded blocks ahead of the consumer.
    pub fn spawn(mut reader: RunReader<K>, readahead_blocks: usize) -> Self {
        let stats = reader.stats().clone();
        reader.set_background(true);
        let (tx, rx) = sync_channel::<Result<Vec<Row<K>>>>(readahead_blocks.max(1));
        let handle = std::thread::spawn(move || loop {
            match reader.next_block_rows() {
                Ok(Some(rows)) => {
                    if tx.send(Ok(rows)).is_err() {
                        return; // consumer dropped: stop prefetching
                    }
                }
                Ok(None) => return, // end of run: dropping tx signals it
                Err(e) => {
                    let _ = tx.send(Err(e));
                    return;
                }
            }
        });
        PrefetchingRunReader {
            rx: Some(rx),
            handle: Some(handle),
            current: std::collections::VecDeque::new(),
            stats,
            done: false,
            rows_yielded: 0,
        }
    }

    /// Rows yielded so far.
    pub fn rows_yielded(&self) -> u64 {
        self.rows_yielded
    }

    /// Drops the channel (unblocking a thread stuck in `send`) and joins.
    fn shut_down(&mut self) {
        self.rx.take();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl<K: SortKey> Iterator for PrefetchingRunReader<K> {
    type Item = Result<Row<K>>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(row) = self.current.pop_front() {
                self.rows_yielded += 1;
                return Some(Ok(row));
            }
            if self.done {
                return None;
            }
            let Some(rx) = &self.rx else {
                self.done = true;
                return None;
            };
            // Only the blocked time counts as compute-side wait; the read
            // and decode themselves were booked by the prefetch thread.
            let started = Instant::now();
            let msg = rx.recv();
            self.stats.record_io_wait(started.elapsed());
            match msg {
                Ok(Ok(rows)) => self.current = rows.into(),
                Ok(Err(e)) => {
                    self.done = true;
                    self.shut_down();
                    return Some(Err(e));
                }
                Err(_) => {
                    // Disconnect = clean end of run.
                    self.done = true;
                    self.shut_down();
                    return None;
                }
            }
        }
    }
}

impl<K: SortKey> Drop for PrefetchingRunReader<K> {
    fn drop(&mut self) {
        self.shut_down();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::StorageBackend;
    use crate::memory::MemoryBackend;
    use crate::run::RunWriter;
    use histok_types::SortOrder;

    fn write_run(
        be: &MemoryBackend,
        name: &str,
        keys: std::ops::Range<u64>,
        block_bytes: usize,
        pipelined: bool,
    ) -> crate::run::RunMeta<u64> {
        let mut w = RunWriter::with_options(
            be,
            name,
            SortOrder::Ascending,
            IoStats::new(),
            block_bytes,
            pipelined,
        )
        .unwrap();
        for k in keys {
            w.append(&Row::new(k, vec![k as u8; 5])).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn pipelined_and_sync_runs_are_byte_identical() {
        let be = MemoryBackend::new();
        let sync = write_run(&be, "sync", 0..500, 128, false);
        let piped = write_run(&be, "piped", 0..500, 128, true);
        assert_eq!(sync.rows, piped.rows);
        assert_eq!(sync.bytes, piped.bytes);
        assert_eq!(sync.blocks, piped.blocks);
        let mut a = vec![0u8; sync.bytes as usize];
        let mut b = vec![0u8; piped.bytes as usize];
        be.open("sync").unwrap().read_exact(&mut a).unwrap();
        be.open("piped").unwrap().read_exact(&mut b).unwrap();
        assert_eq!(a, b, "pipelined spill changed the on-storage bytes");
    }

    #[test]
    fn pipelined_writer_records_overlapped_io() {
        let be = MemoryBackend::new();
        let stats = IoStats::new();
        let mut w =
            RunWriter::with_options(&be, "ov", SortOrder::Ascending, stats.clone(), 64, true)
                .unwrap();
        for k in 0..200u64 {
            w.append(&Row::key_only(k)).unwrap();
        }
        w.finish().unwrap();
        let snap = stats.snapshot();
        assert!(snap.write_ops > 1);
        assert!(snap.overlapped_io_ns > 0, "pipeline writes should book overlapped time");
        assert_eq!(snap.rows_written, 200);
    }

    #[test]
    fn prefetching_reader_yields_identical_rows() {
        let be = MemoryBackend::new();
        let meta = write_run(&be, "pf", 0..1000, 96, true);
        let plain: Vec<u64> =
            RunReader::open(&be, &meta, IoStats::new()).unwrap().map(|r| r.unwrap().key).collect();
        let reader = RunReader::open(&be, &meta, IoStats::new()).unwrap();
        let mut pf = PrefetchingRunReader::spawn(reader, 2);
        let fetched: Vec<u64> = pf.by_ref().map(|r| r.unwrap().key).collect();
        assert_eq!(plain, fetched);
        assert_eq!(pf.rows_yielded(), 1000);
    }

    #[test]
    fn prefetching_reader_resumes_after_skip() {
        let be = MemoryBackend::new();
        let meta = write_run(&be, "sk", 0..600, 128, false);
        let stats = IoStats::new();
        let mut reader = RunReader::open(&be, &meta, stats.clone()).unwrap();
        reader.skip_rows(450).unwrap();
        let rest: Vec<u64> =
            PrefetchingRunReader::spawn(reader, 3).map(|r| r.unwrap().key).collect();
        assert_eq!(rest, (450..600).collect::<Vec<_>>());
        let snap = stats.snapshot();
        assert!(snap.blocks_skipped > 0, "whole-block skips should be counted");
        assert!(snap.bytes_skipped > 0);
    }

    #[test]
    fn dropping_a_prefetching_reader_joins_its_thread() {
        let be = MemoryBackend::new();
        // Many small blocks so the prefetch thread is still mid-run (or
        // blocked on its full channel) when the consumer walks away.
        let meta = write_run(&be, "drop", 0..2000, 32, false);
        let reader = RunReader::open(&be, &meta, IoStats::new()).unwrap();
        let mut pf = PrefetchingRunReader::spawn(reader, 1);
        let first = pf.next().unwrap().unwrap();
        assert_eq!(first.key, 0);
        drop(pf); // must not deadlock; Drop joins the thread
    }

    #[test]
    fn abandoned_pipelined_run_discards_the_object() {
        let be = MemoryBackend::new();
        let mut w: RunWriter<u64> =
            RunWriter::with_options(&be, "gone", SortOrder::Ascending, IoStats::new(), 64, true)
                .unwrap();
        for k in 0..100u64 {
            w.append(&Row::key_only(k)).unwrap();
        }
        drop(w); // no finish: the pipeline must shut down and not leak
                 // The object was never finished, so it must not be readable.
        assert!(RunReader::<u64>::open_named(&be, "gone", IoStats::new()).is_err());
    }
}
