//! CRC-32 (IEEE 802.3) used to checksum run-file blocks.
//!
//! Implemented locally (table-driven, generated at compile time) to keep the
//! dependency set to the approved crates. Run files are written once and
//! read back within the same query, but checksums still catch backend bugs,
//! torn writes in fault-injection tests, and block-boundary mistakes.

/// The standard CRC-32 polynomial (reflected form).
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Computes the CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC-32 ("crc32b") test vectors.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let a = crc32(b"hello world");
        let b = crc32(b"hello worle");
        assert_ne!(a, b);
    }

    #[test]
    fn sensitive_to_reordering() {
        assert_ne!(crc32(b"ab"), crc32(b"ba"));
    }
}
