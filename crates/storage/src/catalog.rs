//! Run bookkeeping for one operator.
//!
//! A [`RunCatalog`] owns the set of live runs an operator has spilled:
//! it hands out unique object names, records finished [`RunMeta`]s, and
//! deletes every object when dropped — the cleanup a query engine performs
//! when an operator closes.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use histok_types::{Result, SortKey, SortOrder};

use crate::backend::StorageBackend;
use crate::run::{KeyRange, RunMeta, RunReader, RunWriter};
use crate::scheduler::{IoScheduler, IoSchedulerHandle};
use crate::stats::IoStats;

/// Tracks the sorted runs one operator has written.
pub struct RunCatalog<K: SortKey> {
    backend: Arc<dyn StorageBackend>,
    prefix: String,
    next_id: AtomicU64,
    runs: Mutex<Vec<RunMeta<K>>>,
    stats: IoStats,
    order: SortOrder,
    block_bytes: AtomicUsize,
    spill_pipeline: AtomicBool,
    /// When set, pipelined spill writes run on this shared pool (gated on
    /// this catalog's backend) instead of one thread per open run.
    io_scheduler: Mutex<Option<IoSchedulerHandle>>,
}

/// Process-global counter backing [`RunCatalog::unique_prefix`].
static PREFIX_COUNTER: AtomicU64 = AtomicU64::new(0);

impl<K: SortKey> RunCatalog<K> {
    /// Returns `{base}-{n}` with a process-unique `n`, so several catalogs
    /// (operators, worker threads, groups) can share one backend without
    /// object-name collisions.
    pub fn unique_prefix(base: &str) -> String {
        format!("{base}-{}", PREFIX_COUNTER.fetch_add(1, Ordering::Relaxed))
    }

    /// Creates a catalog writing runs named `{prefix}-{n}` on `backend`.
    pub fn new(
        backend: Arc<dyn StorageBackend>,
        prefix: impl Into<String>,
        order: SortOrder,
        stats: IoStats,
    ) -> Self {
        RunCatalog {
            backend,
            prefix: prefix.into(),
            next_id: AtomicU64::new(0),
            runs: Mutex::new(Vec::new()),
            stats,
            order,
            block_bytes: AtomicUsize::new(crate::run::DEFAULT_BLOCK_BYTES),
            spill_pipeline: AtomicBool::new(true),
            io_scheduler: Mutex::new(None),
        }
    }

    /// Overrides the block payload target for new runs.
    pub fn with_block_bytes(self, bytes: usize) -> Self {
        self.set_block_bytes(bytes);
        self
    }

    /// Enables or disables the background [`SpillPipeline`] for new runs
    /// (on by default).
    ///
    /// [`SpillPipeline`]: crate::pipeline::SpillPipeline
    pub fn with_spill_pipeline(self, enabled: bool) -> Self {
        self.set_spill_pipeline(enabled);
        self
    }

    /// Sets the block payload target for runs started after this call.
    /// Interior-mutable so owners holding the catalog behind an `Arc` can
    /// still apply config knobs.
    pub fn set_block_bytes(&self, bytes: usize) {
        self.block_bytes.store(bytes.max(1), Ordering::Relaxed);
    }

    /// The current block payload target.
    pub fn block_bytes(&self) -> usize {
        self.block_bytes.load(Ordering::Relaxed)
    }

    /// Sets whether runs started after this call spill through the
    /// background pipeline.
    pub fn set_spill_pipeline(&self, enabled: bool) {
        self.spill_pipeline.store(enabled, Ordering::Relaxed);
    }

    /// True if new runs spill through the background pipeline.
    pub fn spill_pipeline(&self) -> bool {
        self.spill_pipeline.load(Ordering::Relaxed)
    }

    /// Routes pipelined spill writes of new runs through `scheduler`'s
    /// shared worker pool (`None` restores one thread per open run).
    pub fn with_io_scheduler(self, scheduler: Option<IoScheduler>) -> Self {
        self.set_io_scheduler(scheduler);
        self
    }

    /// Interior-mutable setter for the spill I/O scheduler; see
    /// [`RunCatalog::with_io_scheduler`].
    pub fn set_io_scheduler(&self, scheduler: Option<IoScheduler>) {
        *self.io_scheduler.lock() = scheduler.map(|s| s.for_backend(&self.backend));
    }

    /// The scheduler handle new runs will submit spill writes to, if any.
    pub fn io_scheduler(&self) -> Option<IoSchedulerHandle> {
        self.io_scheduler.lock().clone()
    }

    /// Starts a new run; call [`RunCatalog::register`] with the meta
    /// returned by `RunWriter::finish`.
    pub fn start_run(&self) -> Result<RunWriter<K>> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let name = format!("{}-{:06}", self.prefix, id);
        RunWriter::with_io(
            self.backend.as_ref(),
            name,
            self.order,
            self.stats.clone(),
            self.block_bytes(),
            self.spill_pipeline(),
            self.io_scheduler(),
        )
    }

    /// Records a finished run. Empty runs are deleted instead of recorded.
    pub fn register(&self, meta: RunMeta<K>) -> Result<()> {
        if meta.is_empty() {
            self.backend.delete(&meta.name)?;
            return Ok(());
        }
        self.runs.lock().push(meta);
        Ok(())
    }

    /// Opens a reader over a registered run.
    pub fn open(&self, meta: &RunMeta<K>) -> Result<RunReader<K>> {
        RunReader::open(self.backend.as_ref(), meta, self.stats.clone())
    }

    /// Opens a reader scoped to the rows of `meta` inside `range`,
    /// skipping out-of-range blocks via the per-block key index (see
    /// [`RunReader::open_range`]).
    pub fn open_range(&self, meta: &RunMeta<K>, range: KeyRange<K>) -> Result<RunReader<K>> {
        RunReader::open_range(self.backend.as_ref(), meta, self.stats.clone(), range)
    }

    /// Snapshot of all registered runs, in creation order.
    pub fn runs(&self) -> Vec<RunMeta<K>> {
        self.runs.lock().clone()
    }

    /// Number of registered runs.
    pub fn len(&self) -> usize {
        self.runs.lock().len()
    }

    /// True if no runs are registered.
    pub fn is_empty(&self) -> bool {
        self.runs.lock().is_empty()
    }

    /// Removes a run from the catalog and deletes its object (after a merge
    /// has consumed it).
    pub fn remove(&self, name: &str) -> Result<()> {
        self.runs.lock().retain(|m| m.name != name);
        self.backend.delete(name)
    }

    /// Replaces the whole run set (after a merge rewrote the runs).
    pub fn replace_all(&self, new_runs: Vec<RunMeta<K>>) -> Result<()> {
        let old = std::mem::replace(&mut *self.runs.lock(), new_runs);
        let kept: Vec<String> = self.runs.lock().iter().map(|m| m.name.clone()).collect();
        for meta in old {
            if !kept.contains(&meta.name) {
                self.backend.delete(&meta.name)?;
            }
        }
        Ok(())
    }

    /// The shared I/O stats for this catalog.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// The storage backend.
    pub fn backend(&self) -> &Arc<dyn StorageBackend> {
        &self.backend
    }

    /// Sort direction of the catalog's runs.
    pub fn order(&self) -> SortOrder {
        self.order
    }
}

impl<K: SortKey> Drop for RunCatalog<K> {
    fn drop(&mut self) {
        for meta in self.runs.lock().drain(..) {
            let _ = self.backend.delete(&meta.name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryBackend;
    use histok_types::Row;

    fn catalog(be: &MemoryBackend) -> RunCatalog<u64> {
        RunCatalog::new(Arc::new(be.clone()), "t", SortOrder::Ascending, IoStats::new())
    }

    #[test]
    fn start_register_read_cycle() {
        let be = MemoryBackend::new();
        let cat = catalog(&be);
        let mut w = cat.start_run().unwrap();
        for k in [3u64, 5, 9] {
            w.append(&Row::key_only(k)).unwrap();
        }
        cat.register(w.finish().unwrap()).unwrap();
        assert_eq!(cat.len(), 1);
        let meta = &cat.runs()[0];
        let keys: Vec<u64> = cat.open(meta).unwrap().map(|r| r.unwrap().key).collect();
        assert_eq!(keys, vec![3, 5, 9]);
    }

    #[test]
    fn names_are_unique() {
        let be = MemoryBackend::new();
        let cat = catalog(&be);
        let w1 = cat.start_run().unwrap();
        let w2 = cat.start_run().unwrap();
        let m1 = w1.finish().unwrap();
        let m2 = w2.finish().unwrap();
        assert_ne!(m1.name, m2.name);
    }

    #[test]
    fn empty_runs_are_dropped_on_register() {
        let be = MemoryBackend::new();
        let cat = catalog(&be);
        let w = cat.start_run().unwrap();
        cat.register(w.finish().unwrap()).unwrap();
        assert!(cat.is_empty());
        assert_eq!(be.object_count(), 0);
    }

    #[test]
    fn drop_deletes_objects() {
        let be = MemoryBackend::new();
        {
            let cat = catalog(&be);
            let mut w = cat.start_run().unwrap();
            w.append(&Row::key_only(1u64)).unwrap();
            cat.register(w.finish().unwrap()).unwrap();
            assert_eq!(be.object_count(), 1);
        }
        assert_eq!(be.object_count(), 0);
    }

    #[test]
    fn remove_deletes_object() {
        let be = MemoryBackend::new();
        let cat = catalog(&be);
        let mut w = cat.start_run().unwrap();
        w.append(&Row::key_only(1u64)).unwrap();
        let meta = w.finish().unwrap();
        let name = meta.name.clone();
        cat.register(meta).unwrap();
        cat.remove(&name).unwrap();
        assert!(cat.is_empty());
        assert_eq!(be.object_count(), 0);
    }

    #[test]
    fn replace_all_deletes_stale_objects() {
        let be = MemoryBackend::new();
        let cat = catalog(&be);
        for _ in 0..3 {
            let mut w = cat.start_run().unwrap();
            w.append(&Row::key_only(1u64)).unwrap();
            cat.register(w.finish().unwrap()).unwrap();
        }
        let keep = cat.runs()[2].clone();
        cat.replace_all(vec![keep.clone()]).unwrap();
        assert_eq!(cat.len(), 1);
        assert_eq!(be.object_count(), 1);
        assert_eq!(cat.runs()[0].name, keep.name);
    }
}
