//! File-backed storage backend.
//!
//! Spill objects are plain files inside a spill directory, written through
//! `BufWriter` and read through `BufReader` — the buffered sequential I/O
//! the perf guidance calls for and the access pattern the paper's storage
//! service is optimized for. The directory is created on demand and (when
//! the backend owns it) removed on drop.

use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use histok_types::{Error, Result};

use crate::backend::{SpillReader, SpillWriter, StorageBackend};

/// Capacity of the read/write buffers (256 KiB — large sequential chunks).
const IO_BUF_BYTES: usize = 256 * 1024;

/// A [`StorageBackend`] storing each spill object as a file.
#[derive(Debug, Clone)]
pub struct FileBackend {
    dir: Arc<DirHandle>,
}

#[derive(Debug)]
struct DirHandle {
    path: PathBuf,
    owned: bool,
}

impl Drop for DirHandle {
    fn drop(&mut self) {
        if self.owned {
            // Best-effort cleanup of the temp spill directory.
            let _ = fs::remove_dir_all(&self.path);
        }
    }
}

static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

impl FileBackend {
    /// Uses (and creates if needed) the given directory. The directory is
    /// *not* removed on drop.
    pub fn at(dir: impl AsRef<Path>) -> Result<Self> {
        let path = dir.as_ref().to_path_buf();
        fs::create_dir_all(&path)?;
        Ok(FileBackend { dir: Arc::new(DirHandle { path, owned: false }) })
    }

    /// Creates a unique spill directory under the system temp dir, removed
    /// when the last clone of the backend is dropped.
    pub fn temp() -> Result<Self> {
        let n = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("histok-spill-{}-{}", std::process::id(), n));
        fs::create_dir_all(&path)?;
        Ok(FileBackend { dir: Arc::new(DirHandle { path, owned: true }) })
    }

    /// The directory holding the spill files.
    pub fn dir(&self) -> &Path {
        &self.dir.path
    }

    fn path_of(&self, name: &str) -> Result<PathBuf> {
        // Reject path traversal: names are opaque identifiers, not paths.
        if name.is_empty() || name.contains(['/', '\\']) || name == "." || name == ".." {
            return Err(Error::InvalidConfig(format!("invalid spill object name: {name:?}")));
        }
        Ok(self.dir.path.join(name))
    }
}

struct FileWriter {
    writer: BufWriter<File>,
    bytes: u64,
}

impl SpillWriter for FileWriter {
    fn write_all(&mut self, data: &[u8]) -> Result<()> {
        self.writer.write_all(data)?;
        self.bytes += data.len() as u64;
        Ok(())
    }
    fn finish(&mut self) -> Result<u64> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data().ok(); // durability is best-effort for spills
        Ok(self.bytes)
    }
}

struct FileReader {
    reader: BufReader<File>,
}

impl SpillReader for FileReader {
    fn read_exact(&mut self, buf: &mut [u8]) -> Result<()> {
        self.reader.read_exact(buf)?;
        Ok(())
    }
    fn skip(&mut self, n: u64) -> Result<()> {
        // BufReader::seek_relative keeps the buffer when possible.
        self.reader
            .seek_relative(n as i64)
            .or_else(|_| self.reader.seek(SeekFrom::Current(n as i64)).map(|_| ()))?;
        Ok(())
    }
}

impl StorageBackend for FileBackend {
    fn create(&self, name: &str) -> Result<Box<dyn SpillWriter>> {
        let path = self.path_of(name)?;
        let file = File::create(path)?;
        Ok(Box::new(FileWriter { writer: BufWriter::with_capacity(IO_BUF_BYTES, file), bytes: 0 }))
    }

    fn open(&self, name: &str) -> Result<Box<dyn SpillReader>> {
        let path = self.path_of(name)?;
        let file = File::open(path)?;
        Ok(Box::new(FileReader { reader: BufReader::with_capacity(IO_BUF_BYTES, file) }))
    }

    fn delete(&self, name: &str) -> Result<()> {
        let path = self.path_of(name)?;
        match fs::remove_file(path) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e.into()),
        }
    }

    fn size_of(&self, name: &str) -> Result<u64> {
        Ok(fs::metadata(self.path_of(name)?)?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_size() {
        let be = FileBackend::temp().unwrap();
        let mut w = be.create("run-1").unwrap();
        w.write_all(b"0123456789").unwrap();
        assert_eq!(w.finish().unwrap(), 10);
        assert_eq!(be.size_of("run-1").unwrap(), 10);
        let mut r = be.open("run-1").unwrap();
        let mut buf = [0u8; 10];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"0123456789");
    }

    #[test]
    fn skip_uses_seek() {
        let be = FileBackend::temp().unwrap();
        let mut w = be.create("r").unwrap();
        let data: Vec<u8> = (0..200u8).collect();
        w.write_all(&data).unwrap();
        w.finish().unwrap();
        let mut r = be.open("r").unwrap();
        r.skip(100).unwrap();
        let mut b = [0u8; 2];
        r.read_exact(&mut b).unwrap();
        assert_eq!(b, [100, 101]);
    }

    #[test]
    fn temp_dir_is_removed_on_drop() {
        let dir;
        {
            let be = FileBackend::temp().unwrap();
            dir = be.dir().to_path_buf();
            let mut w = be.create("x").unwrap();
            w.write_all(b"abc").unwrap();
            w.finish().unwrap();
            assert!(dir.exists());
        }
        assert!(!dir.exists());
    }

    #[test]
    fn at_directory_persists_after_drop() {
        let parent = std::env::temp_dir().join(format!("histok-at-{}", std::process::id()));
        {
            let be = FileBackend::at(&parent).unwrap();
            let mut w = be.create("keep").unwrap();
            w.write_all(b"z").unwrap();
            w.finish().unwrap();
        }
        assert!(parent.join("keep").exists());
        fs::remove_dir_all(parent).unwrap();
    }

    #[test]
    fn rejects_path_traversal_names() {
        let be = FileBackend::temp().unwrap();
        assert!(be.create("../evil").is_err());
        assert!(be.create("a/b").is_err());
        assert!(be.create("").is_err());
        assert!(be.create("..").is_err());
    }

    #[test]
    fn delete_missing_is_ok() {
        let be = FileBackend::temp().unwrap();
        be.delete("never-existed").unwrap();
    }

    #[test]
    fn open_missing_is_error() {
        let be = FileBackend::temp().unwrap();
        assert!(be.open("ghost").is_err());
    }
}
