//! A bounded worker pool for background I/O.
//!
//! PR 3/4 hid disaggregated-storage latency (DESIGN.md §7) by spawning one
//! OS thread per spill pipeline and per prefetching merge source. That is
//! fine for one query, but a 512-run cascade at fan-in 64 with a
//! partitioned final merge multiplies to hundreds of threads — the
//! "ruinous" explosion ROADMAP open item 4 calls out. [`IoScheduler`] is
//! the fix: a fixed-size pool of `io_threads` workers fed by a single
//! submission queue of boxed, block-sized I/O jobs.
//!
//! **Priority classes.** Every job carries an [`IoClass`] — a shared,
//! mutable [`IoPriority`] tag. Workers always dispatch the eligible job
//! with the numerically smallest class (FIFO within a class):
//! [`IoPriority::MergeReadAhead`] (a merge source whose consumer is
//! actively blocked) outranks [`IoPriority::Prefetch`] (speculative
//! read-ahead), which outranks [`IoPriority::SpillWrite`] (spill writes,
//! which only ever stall the producer by bounded backpressure). Because
//! the tag is shared, a consumer that starts draining a source can
//! escalate jobs that are *already queued*.
//!
//! **Per-backend gate.** [`IoScheduler::for_backend`] returns a handle
//! whose jobs count against an in-flight limit for that backend (default:
//! the worker count), so one slow storage service cannot absorb every
//! worker while jobs for a healthy backend starve in the queue.
//!
//! **Contracts.** Jobs must never block on another job (the pipeline and
//! prefetcher submit state-machine steps that re-check their component
//! state and return instead of waiting), so any pool size ≥ 1 is
//! deadlock-free. Workers are spawned lazily on first submission and
//! joined when the last [`IoScheduler`] clone drops.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, Weak};
use std::thread::JoinHandle;

use crate::backend::StorageBackend;

/// Locks ignoring poisoning (a panicked job must not wedge the pool).
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Condvar wait ignoring poisoning; returns the reacquired guard.
pub(crate) fn wait<'a, T>(c: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    c.wait(g).unwrap_or_else(PoisonError::into_inner)
}

/// Priority class of one background-I/O job; smaller dispatches first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum IoPriority {
    /// Read-ahead for a merge source whose consumer is blocked waiting on
    /// it — the merge cannot make progress until this job runs.
    MergeReadAhead = 0,
    /// Speculative read-ahead for a source whose buffer still has blocks.
    Prefetch = 1,
    /// Background spill writes; the producer is only ever delayed by
    /// bounded backpressure, never starved.
    SpillWrite = 2,
}

impl IoPriority {
    const COUNT: usize = 3;

    fn from_u8(v: u8) -> IoPriority {
        match v {
            0 => IoPriority::MergeReadAhead,
            1 => IoPriority::Prefetch,
            _ => IoPriority::SpillWrite,
        }
    }
}

/// A shared, mutable priority tag.
///
/// A component clones one `IoClass` into every job it submits; calling
/// [`IoClass::set`] re-prioritizes jobs *already sitting in the queue*
/// (the prefetcher escalates to [`IoPriority::MergeReadAhead`] the moment
/// its consumer actually blocks).
#[derive(Debug, Clone)]
pub struct IoClass(Arc<AtomicU8>);

impl IoClass {
    /// A fresh tag at priority `p`.
    pub fn new(p: IoPriority) -> Self {
        IoClass(Arc::new(AtomicU8::new(p as u8)))
    }

    /// Re-tags this class (and every queued job sharing it) as `p`.
    pub fn set(&self, p: IoPriority) {
        self.0.store(p as u8, Ordering::Relaxed);
    }

    /// The current priority.
    pub fn get(&self) -> IoPriority {
        IoPriority::from_u8(self.0.load(Ordering::Relaxed))
    }
}

/// In-flight limit for one storage backend (see module docs).
#[derive(Debug)]
struct BackendGate {
    limit: usize,
    in_flight: AtomicUsize,
}

struct Job {
    class: IoClass,
    seq: u64,
    gate: Option<Arc<BackendGate>>,
    work: Box<dyn FnOnce() + Send>,
}

impl Job {
    fn eligible(&self) -> bool {
        self.gate.as_ref().is_none_or(|g| g.in_flight.load(Ordering::Relaxed) < g.limit)
    }
}

struct SchedState {
    queue: Vec<Job>,
    next_seq: u64,
    shutdown: bool,
    spawned: bool,
}

#[derive(Default)]
struct MetricsInner {
    submitted: [AtomicU64; IoPriority::COUNT],
    completed: [AtomicU64; IoPriority::COUNT],
    queue_depth_peak: AtomicUsize,
}

/// Point-in-time counters for one [`IoScheduler`], indexable by
/// [`IoPriority`] (`submitted[IoPriority::SpillWrite as usize]`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoSchedulerMetrics {
    /// Jobs submitted, by priority class at submission time.
    pub submitted: [u64; 3],
    /// Jobs completed, by priority class at dispatch time.
    pub completed: [u64; 3],
    /// Jobs currently queued (not yet dispatched).
    pub queue_depth: usize,
    /// High-water mark of `queue_depth`.
    pub queue_depth_peak: usize,
}

impl IoSchedulerMetrics {
    /// Total jobs submitted across all classes.
    pub fn submitted_total(&self) -> u64 {
        self.submitted.iter().sum()
    }

    /// Total jobs completed across all classes.
    pub fn completed_total(&self) -> u64 {
        self.completed.iter().sum()
    }
}

struct Core {
    state: Mutex<SchedState>,
    cond: Condvar,
    threads: usize,
    backend_limit: usize,
    gates: Mutex<HashMap<usize, Weak<BackendGate>>>,
    metrics: MetricsInner,
}

impl Core {
    /// Index of the best eligible job: smallest (class, seq), honoring
    /// backend gates. Linear scan — the queue holds O(open sources) jobs.
    fn pick(queue: &[Job]) -> Option<usize> {
        queue
            .iter()
            .enumerate()
            .filter(|(_, j)| j.eligible())
            .min_by_key(|(_, j)| (j.class.get(), j.seq))
            .map(|(i, _)| i)
    }

    fn worker(self: &Arc<Core>) {
        let _census = ThreadCensus::register();
        loop {
            let job = {
                let mut st = lock(&self.state);
                loop {
                    if st.shutdown {
                        return;
                    }
                    if let Some(idx) = Core::pick(&st.queue) {
                        let job = st.queue.swap_remove(idx);
                        if let Some(gate) = &job.gate {
                            gate.in_flight.fetch_add(1, Ordering::Relaxed);
                        }
                        break job;
                    }
                    st = wait(&self.cond, st);
                }
            };
            let class = job.class.get() as usize;
            (job.work)();
            if let Some(gate) = &job.gate {
                gate.in_flight.fetch_sub(1, Ordering::Relaxed);
                // A queued job for this backend may have become eligible.
                self.cond.notify_all();
            }
            self.metrics.completed[class].fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Owns the pool; dropped when the last [`IoScheduler`] clone goes away.
struct SchedulerOwner {
    core: Arc<Core>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Drop for SchedulerOwner {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.core.state);
            st.shutdown = true;
            // Undispatched jobs are dropped: a live component would be
            // holding a scheduler clone, so nothing can be waiting on them.
            st.queue.clear();
        }
        self.core.cond.notify_all();
        for handle in lock(&self.handles).drain(..) {
            let _ = handle.join();
        }
    }
}

/// A fixed-size background-I/O worker pool. See the module docs.
///
/// Cloning is cheap and shares the pool; workers are joined when the last
/// clone drops.
#[derive(Clone)]
pub struct IoScheduler {
    owner: Arc<SchedulerOwner>,
}

impl std::fmt::Debug for IoScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IoScheduler").field("threads", &self.owner.core.threads).finish()
    }
}

impl IoScheduler {
    /// A pool of `threads` workers (clamped to ≥ 1), with a per-backend
    /// in-flight limit equal to the worker count.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        Self::with_backend_limit(threads, threads)
    }

    /// A pool with an explicit per-backend in-flight limit (clamped ≥ 1).
    pub fn with_backend_limit(threads: usize, backend_limit: usize) -> Self {
        let core = Arc::new(Core {
            state: Mutex::new(SchedState {
                queue: Vec::new(),
                next_seq: 0,
                shutdown: false,
                spawned: false,
            }),
            cond: Condvar::new(),
            threads: threads.max(1),
            backend_limit: backend_limit.max(1),
            gates: Mutex::new(HashMap::new()),
            metrics: MetricsInner::default(),
        });
        IoScheduler { owner: Arc::new(SchedulerOwner { core, handles: Mutex::new(Vec::new()) }) }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.owner.core.threads
    }

    /// True if `other` is a clone of this scheduler (same worker pool),
    /// as opposed to an independently constructed pool.
    pub fn same_pool(&self, other: &IoScheduler) -> bool {
        Arc::ptr_eq(&self.owner.core, &other.owner.core)
    }

    /// An ungated submission handle (no per-backend limit).
    pub fn handle(&self) -> IoSchedulerHandle {
        IoSchedulerHandle { sched: self.clone(), gate: None }
    }

    /// A handle whose jobs count against `backend`'s in-flight gate.
    /// Handles for the same backend (by identity) share one gate.
    pub fn for_backend(&self, backend: &Arc<dyn StorageBackend>) -> IoSchedulerHandle {
        let key = Arc::as_ptr(backend) as *const () as usize;
        let mut gates = lock(&self.owner.core.gates);
        gates.retain(|_, weak| weak.strong_count() > 0);
        let gate = match gates.get(&key).and_then(Weak::upgrade) {
            Some(gate) => gate,
            None => {
                let gate = Arc::new(BackendGate {
                    limit: self.owner.core.backend_limit,
                    in_flight: AtomicUsize::new(0),
                });
                gates.insert(key, Arc::downgrade(&gate));
                gate
            }
        };
        IoSchedulerHandle { sched: self.clone(), gate: Some(gate) }
    }

    /// Current scheduler counters.
    pub fn metrics(&self) -> IoSchedulerMetrics {
        let m = &self.owner.core.metrics;
        let load = |a: &[AtomicU64; 3]| {
            [
                a[0].load(Ordering::Relaxed),
                a[1].load(Ordering::Relaxed),
                a[2].load(Ordering::Relaxed),
            ]
        };
        IoSchedulerMetrics {
            submitted: load(&m.submitted),
            completed: load(&m.completed),
            queue_depth: lock(&self.owner.core.state).queue.len(),
            queue_depth_peak: m.queue_depth_peak.load(Ordering::Relaxed),
        }
    }

    fn submit(
        &self,
        class: &IoClass,
        gate: Option<Arc<BackendGate>>,
        work: Box<dyn FnOnce() + Send>,
    ) {
        let core = &self.owner.core;
        core.metrics.submitted[class.get() as usize].fetch_add(1, Ordering::Relaxed);
        let spawn = {
            let mut st = lock(&core.state);
            if st.shutdown {
                // Defensive: cannot happen while a handle is alive, but a
                // dropped job must never strand a waiting component.
                drop(st);
                work();
                return;
            }
            let seq = st.next_seq;
            st.next_seq += 1;
            st.queue.push(Job { class: class.clone(), seq, gate, work });
            core.metrics.queue_depth_peak.fetch_max(st.queue.len(), Ordering::Relaxed);
            !std::mem::replace(&mut st.spawned, true)
        };
        if spawn {
            let mut handles = lock(&self.owner.handles);
            for i in 0..core.threads {
                let core = core.clone();
                handles.push(
                    std::thread::Builder::new()
                        .name(format!("io-sched-{i}"))
                        .spawn(move || core.worker())
                        .expect("spawn io scheduler worker"),
                );
            }
        }
        core.cond.notify_one();
    }
}

/// A cloneable submission endpoint: a scheduler plus an optional
/// per-backend gate. Components hold one of these instead of spawning
/// threads.
#[derive(Debug, Clone)]
pub struct IoSchedulerHandle {
    sched: IoScheduler,
    gate: Option<Arc<BackendGate>>,
}

impl IoSchedulerHandle {
    /// Queues `work` under priority tag `class`. The job runs exactly once
    /// on a pool worker; it must not block on other jobs.
    pub fn submit(&self, class: &IoClass, work: impl FnOnce() + Send + 'static) {
        self.sched.submit(class, self.gate.clone(), Box::new(work));
    }

    /// The scheduler this handle submits to.
    pub fn scheduler(&self) -> &IoScheduler {
        &self.sched
    }
}

static CENSUS_CURRENT: AtomicUsize = AtomicUsize::new(0);
static CENSUS_PEAK: AtomicUsize = AtomicUsize::new(0);

/// Process-wide census of live background-I/O threads (pool workers plus
/// any legacy thread-per-source threads). The spill-storm bench asserts
/// its peak stays ≤ `io_threads`; it is global state, so tests that run
/// in parallel must not assert on it.
pub struct ThreadCensus;

impl ThreadCensus {
    /// Registers the calling thread until the returned guard drops.
    pub fn register() -> CensusGuard {
        let now = CENSUS_CURRENT.fetch_add(1, Ordering::SeqCst) + 1;
        CENSUS_PEAK.fetch_max(now, Ordering::SeqCst);
        CensusGuard { _priv: () }
    }

    /// Background-I/O threads alive right now.
    pub fn current() -> usize {
        CENSUS_CURRENT.load(Ordering::SeqCst)
    }

    /// High-water mark since process start (or the last reset).
    pub fn peak() -> usize {
        CENSUS_PEAK.load(Ordering::SeqCst)
    }

    /// Resets the peak to the current count (between bench cases).
    pub fn reset_peak() {
        CENSUS_PEAK.store(CENSUS_CURRENT.load(Ordering::SeqCst), Ordering::SeqCst);
    }
}

/// RAII guard from [`ThreadCensus::register`].
pub struct CensusGuard {
    _priv: (),
}

impl Drop for CensusGuard {
    fn drop(&mut self) {
        CENSUS_CURRENT.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryBackend;
    use std::sync::mpsc;
    use std::time::Duration;

    #[test]
    fn jobs_run_and_metrics_count() {
        let sched = IoScheduler::new(2);
        let handle = sched.handle();
        let (tx, rx) = mpsc::channel();
        for _ in 0..8 {
            let tx = tx.clone();
            handle.submit(&IoClass::new(IoPriority::Prefetch), move || {
                tx.send(()).unwrap();
            });
        }
        for _ in 0..8 {
            rx.recv_timeout(Duration::from_secs(10)).expect("job ran");
        }
        // Completion counters are bumped after the job body runs; give the
        // workers a moment to finish bookkeeping.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while sched.metrics().completed_total() < 8 {
            assert!(std::time::Instant::now() < deadline, "completions never recorded");
            std::thread::yield_now();
        }
        let m = sched.metrics();
        assert_eq!(m.submitted[IoPriority::Prefetch as usize], 8);
        assert_eq!(m.submitted_total(), 8);
        assert_eq!(m.queue_depth, 0);
        assert!(m.queue_depth_peak >= 1);
    }

    /// With a single worker wedged on a gate job, queued jobs of all three
    /// classes must dispatch highest-priority-first regardless of
    /// submission order — including one escalated *after* queueing.
    #[test]
    fn priority_classes_dispatch_in_order() {
        let sched = IoScheduler::new(1);
        let handle = sched.handle();
        let (order_tx, order_rx) = mpsc::channel::<&'static str>();
        let (gate_tx, gate_rx) = mpsc::channel::<()>();
        // Wedge the only worker so the next three jobs queue up.
        handle.submit(&IoClass::new(IoPriority::MergeReadAhead), move || {
            gate_rx.recv_timeout(Duration::from_secs(30)).unwrap();
        });
        // Wait until the wedge job is dispatched (queue drains to 0).
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while sched.metrics().queue_depth > 0 {
            assert!(std::time::Instant::now() < deadline);
            std::thread::yield_now();
        }
        let escalated = IoClass::new(IoPriority::SpillWrite);
        for (class, tag) in [
            (escalated.clone(), "escalated"),
            (IoClass::new(IoPriority::SpillWrite), "spill"),
            (IoClass::new(IoPriority::Prefetch), "prefetch"),
        ] {
            let tx = order_tx.clone();
            handle.submit(&class, move || tx.send(tag).unwrap());
        }
        // Escalate the first-submitted spill job to the front of the line.
        escalated.set(IoPriority::MergeReadAhead);
        gate_tx.send(()).unwrap();
        let got: Vec<_> =
            (0..3).map(|_| order_rx.recv_timeout(Duration::from_secs(10)).unwrap()).collect();
        assert_eq!(got, vec!["escalated", "prefetch", "spill"]);
    }

    #[test]
    fn backend_gate_bounds_in_flight_jobs() {
        let sched = IoScheduler::with_backend_limit(4, 1);
        let backend: Arc<dyn StorageBackend> = Arc::new(MemoryBackend::new());
        let handle = sched.for_backend(&backend);
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = mpsc::channel();
        for _ in 0..6 {
            let (live, peak, tx) = (live.clone(), peak.clone(), tx.clone());
            handle.submit(&IoClass::new(IoPriority::Prefetch), move || {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(5));
                live.fetch_sub(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..6 {
            rx.recv_timeout(Duration::from_secs(10)).expect("gated job ran");
        }
        assert_eq!(peak.load(Ordering::SeqCst), 1, "gate of 1 must serialize the backend");
        // Handles for the same backend share the gate object.
        let again = sched.for_backend(&backend);
        assert!(Arc::ptr_eq(again.gate.as_ref().unwrap(), handle.gate.as_ref().unwrap()));
    }

    #[test]
    fn dropping_the_last_clone_joins_workers() {
        let sched = IoScheduler::new(3);
        let clone = sched.clone();
        // Each worker thread holds an Arc to the core for its lifetime, so
        // the strong count observes spawn and join without touching the
        // process-global census (which races with parallel tests).
        let core = sched.owner.core.clone();
        let (tx, rx) = mpsc::channel();
        clone.handle().submit(&IoClass::new(IoPriority::SpillWrite), move || {
            tx.send(()).unwrap();
        });
        rx.recv_timeout(Duration::from_secs(10)).unwrap();
        drop(sched);
        // Workers stay up while one clone is alive: owner + this test +
        // three workers.
        assert_eq!(Arc::strong_count(&core), 5);
        // ...and are joined when the last clone drops.
        drop(clone);
        assert_eq!(Arc::strong_count(&core), 1);
    }

    #[test]
    fn census_guard_tracks_current_and_peak() {
        let base = ThreadCensus::current();
        let a = ThreadCensus::register();
        let b = ThreadCensus::register();
        assert!(ThreadCensus::current() >= base + 2);
        assert!(ThreadCensus::peak() >= base + 2);
        drop(a);
        drop(b);
        assert!(ThreadCensus::current() >= base);
    }
}
