//! Failure-injection backend for tests.
//!
//! Wraps any [`StorageBackend`] with a [`FaultPlan`] that can fail object
//! creation, fail writes or reads after a byte budget, or silently corrupt a
//! byte in flight. Used by the test suites to prove that every operator
//! propagates storage errors cleanly instead of producing partial results.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use histok_types::{Error, Result};

use crate::backend::{SpillReader, SpillWriter, StorageBackend};

/// What should go wrong, and when.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Fail every `create` call.
    pub fail_create: bool,
    /// Fail writes once this many bytes have been written (across all
    /// writers of this backend).
    pub fail_write_after_bytes: Option<u64>,
    /// Fail reads once this many bytes have been read.
    pub fail_read_after_bytes: Option<u64>,
    /// XOR-corrupt the byte at this global write offset.
    pub corrupt_write_byte_at: Option<u64>,
}

impl FaultPlan {
    /// A plan that never fails (useful as a baseline).
    pub fn none() -> Self {
        Self::default()
    }
}

#[derive(Debug, Default)]
struct FaultState {
    bytes_written: AtomicU64,
    bytes_read: AtomicU64,
    tripped: AtomicBool,
}

/// A [`StorageBackend`] decorator applying a [`FaultPlan`].
#[derive(Clone)]
pub struct FaultBackend<B> {
    inner: B,
    plan: Arc<FaultPlan>,
    state: Arc<FaultState>,
}

impl<B: StorageBackend> FaultBackend<B> {
    /// Wraps `inner` with `plan`.
    pub fn new(inner: B, plan: FaultPlan) -> Self {
        FaultBackend { inner, plan: Arc::new(plan), state: Arc::new(FaultState::default()) }
    }

    /// True once any injected fault has fired.
    pub fn fault_fired(&self) -> bool {
        self.state.tripped.load(Ordering::Relaxed)
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }
}

struct FaultWriter {
    inner: Box<dyn SpillWriter>,
    plan: Arc<FaultPlan>,
    state: Arc<FaultState>,
}

impl SpillWriter for FaultWriter {
    fn write_all(&mut self, data: &[u8]) -> Result<()> {
        let start = self.state.bytes_written.fetch_add(data.len() as u64, Ordering::Relaxed);
        if let Some(limit) = self.plan.fail_write_after_bytes {
            if start + data.len() as u64 > limit {
                self.state.tripped.store(true, Ordering::Relaxed);
                return Err(Error::Injected(format!("write budget of {limit} bytes exhausted")));
            }
        }
        if let Some(at) = self.plan.corrupt_write_byte_at {
            if at >= start && at < start + data.len() as u64 {
                self.state.tripped.store(true, Ordering::Relaxed);
                let mut copy = data.to_vec();
                copy[(at - start) as usize] ^= 0xFF;
                return self.inner.write_all(&copy);
            }
        }
        self.inner.write_all(data)
    }

    fn finish(&mut self) -> Result<u64> {
        self.inner.finish()
    }
}

struct FaultReader {
    inner: Box<dyn SpillReader>,
    plan: Arc<FaultPlan>,
    state: Arc<FaultState>,
}

impl SpillReader for FaultReader {
    fn read_exact(&mut self, buf: &mut [u8]) -> Result<()> {
        let start = self.state.bytes_read.fetch_add(buf.len() as u64, Ordering::Relaxed);
        if let Some(limit) = self.plan.fail_read_after_bytes {
            if start + buf.len() as u64 > limit {
                self.state.tripped.store(true, Ordering::Relaxed);
                return Err(Error::Injected(format!("read budget of {limit} bytes exhausted")));
            }
        }
        self.inner.read_exact(buf)
    }

    fn skip(&mut self, n: u64) -> Result<()> {
        self.inner.skip(n)
    }
}

impl<B: StorageBackend> StorageBackend for FaultBackend<B> {
    fn create(&self, name: &str) -> Result<Box<dyn SpillWriter>> {
        if self.plan.fail_create {
            self.state.tripped.store(true, Ordering::Relaxed);
            return Err(Error::Injected(format!("create({name}) failed by plan")));
        }
        Ok(Box::new(FaultWriter {
            inner: self.inner.create(name)?,
            plan: self.plan.clone(),
            state: self.state.clone(),
        }))
    }

    fn open(&self, name: &str) -> Result<Box<dyn SpillReader>> {
        Ok(Box::new(FaultReader {
            inner: self.inner.open(name)?,
            plan: self.plan.clone(),
            state: self.state.clone(),
        }))
    }

    fn delete(&self, name: &str) -> Result<()> {
        self.inner.delete(name)
    }

    fn size_of(&self, name: &str) -> Result<u64> {
        self.inner.size_of(name)
    }

    fn modelled_io_ns(&self) -> u64 {
        self.inner.modelled_io_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryBackend;
    use crate::run::{RunReader, RunWriter};
    use crate::stats::IoStats;
    use histok_types::{Row, SortOrder};

    #[test]
    fn create_failure_fires() {
        let be = FaultBackend::new(
            MemoryBackend::new(),
            FaultPlan { fail_create: true, ..FaultPlan::none() },
        );
        assert!(be.create("x").is_err());
        assert!(be.fault_fired());
    }

    #[test]
    fn write_budget_enforced() {
        let be = FaultBackend::new(
            MemoryBackend::new(),
            FaultPlan { fail_write_after_bytes: Some(100), ..FaultPlan::none() },
        );
        let mut w = be.create("x").unwrap();
        w.write_all(&[0u8; 90]).unwrap();
        assert!(w.write_all(&[0u8; 20]).is_err());
        assert!(be.fault_fired());
    }

    #[test]
    fn read_budget_enforced() {
        let inner = MemoryBackend::new();
        {
            let mut w = inner.create("x").unwrap();
            w.write_all(&[7u8; 64]).unwrap();
            w.finish().unwrap();
        }
        let be = FaultBackend::new(
            inner,
            FaultPlan { fail_read_after_bytes: Some(32), ..FaultPlan::none() },
        );
        let mut r = be.open("x").unwrap();
        let mut buf = [0u8; 32];
        r.read_exact(&mut buf).unwrap();
        assert!(r.read_exact(&mut buf).is_err());
    }

    #[test]
    fn corruption_is_caught_by_run_crc() {
        let plan = FaultPlan {
            // Offset 40 lands inside the first block payload (file header 8 +
            // block header 16 + a row or two).
            corrupt_write_byte_at: Some(40),
            ..FaultPlan::none()
        };
        let be = FaultBackend::new(MemoryBackend::new(), plan);
        let mut w: RunWriter<u64> =
            RunWriter::create(&be, "r", SortOrder::Ascending, IoStats::new()).unwrap();
        for k in 0..100u64 {
            w.append(&Row::new(k, vec![0u8; 8])).unwrap();
        }
        let meta = w.finish().unwrap();
        assert!(be.fault_fired());
        let mut reader = RunReader::open(&be, &meta, IoStats::new()).unwrap();
        let result: Result<Vec<_>> = reader.by_ref().collect();
        assert!(matches!(result, Err(Error::Corrupt(_))));
    }

    #[test]
    fn no_plan_means_no_faults() {
        let be = FaultBackend::new(MemoryBackend::new(), FaultPlan::none());
        let mut w = be.create("ok").unwrap();
        w.write_all(&[1u8; 1024]).unwrap();
        w.finish().unwrap();
        let mut r = be.open("ok").unwrap();
        let mut buf = [0u8; 1024];
        r.read_exact(&mut buf).unwrap();
        assert!(!be.fault_fired());
    }
}
