//! The pluggable byte-storage abstraction under run files.
//!
//! A backend is deliberately dumb: it hands out sequential writers and
//! sequential readers for named spill objects. All structure (blocks, rows,
//! checksums, metadata) lives in [`crate::run`]. This mirrors the paper's
//! storage service: an opaque remote endpoint that is only efficient for
//! sequential access (§2.1).

use histok_types::Result;

/// A sequential writer for one spill object.
///
/// `finish` must be called to make the object durable and readable; dropping
/// a writer without finishing discards the object (matching how a failed
/// query abandons its half-written runs).
pub trait SpillWriter: Send {
    /// Appends bytes to the object.
    fn write_all(&mut self, data: &[u8]) -> Result<()>;

    /// Flushes and seals the object, returning its total size in bytes.
    fn finish(&mut self) -> Result<u64>;
}

/// A sequential reader over a finished spill object.
pub trait SpillReader: Send {
    /// Reads exactly `buf.len()` bytes, erroring on EOF-in-the-middle.
    fn read_exact(&mut self, buf: &mut [u8]) -> Result<()>;

    /// Skips `n` bytes. The default implementation reads and discards;
    /// seekable backends override it.
    fn skip(&mut self, mut n: u64) -> Result<()> {
        let mut scratch = [0u8; 4096];
        while n > 0 {
            let take = scratch.len().min(n as usize);
            self.read_exact(&mut scratch[..take])?;
            n -= take as u64;
        }
        Ok(())
    }
}

/// Where spilled bytes live.
///
/// Object names are chosen by the caller ([`crate::catalog::RunCatalog`]
/// generates unique ones). Backends must allow concurrent writers to
/// *different* names and concurrent readers of finished objects.
pub trait StorageBackend: Send + Sync {
    /// Creates (or truncates) the named object and returns its writer.
    fn create(&self, name: &str) -> Result<Box<dyn SpillWriter>>;

    /// Opens a finished object for sequential reading.
    fn open(&self, name: &str) -> Result<Box<dyn SpillReader>>;

    /// Deletes the named object; deleting a missing object is not an error
    /// (idempotent cleanup).
    fn delete(&self, name: &str) -> Result<()>;

    /// Returns the size in bytes of a finished object.
    fn size_of(&self, name: &str) -> Result<u64>;

    /// Total modelled I/O nanoseconds accumulated by this backend's cost
    /// model. Plain backends have no model and return 0; decorators that
    /// simulate disaggregated storage (see [`crate::ThrottledBackend`])
    /// override this so operators can surface virtual I/O time in their
    /// metrics without knowing the concrete backend type.
    fn modelled_io_ns(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct SliceReader<'a>(&'a [u8]);
    impl SpillReader for SliceReader<'_> {
        fn read_exact(&mut self, buf: &mut [u8]) -> Result<()> {
            if self.0.len() < buf.len() {
                return Err(histok_types::Error::Corrupt("eof".into()));
            }
            let (head, tail) = self.0.split_at(buf.len());
            buf.copy_from_slice(head);
            self.0 = tail;
            Ok(())
        }
    }

    #[test]
    fn default_skip_discards_bytes() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut r = SliceReader(&data);
        r.skip(9_000).unwrap();
        let mut buf = [0u8; 4];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, &data[9_000..9_004]);
    }

    #[test]
    fn skip_past_end_errors() {
        let data = [0u8; 10];
        let mut r = SliceReader(&data);
        assert!(r.skip(11).is_err());
    }
}
