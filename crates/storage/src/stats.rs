//! I/O accounting — the paper's principal metric.
//!
//! "With input and output sizes fixed, the size of the required secondary
//! storage determines overall performance and is the principal metric to
//! optimize" (§1). Every run writer/reader increments a shared [`IoStats`],
//! so an experiment can report exactly the quantities of the paper's tables
//! and figures: rows spilled, runs created, bytes moved.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use histok_types::{LatencyHistogram, LatencySnapshot};

/// Shared, thread-safe I/O counters for one operator or experiment.
///
/// Cloning is cheap (an `Arc` bump); all clones observe the same counters.
#[derive(Debug, Clone, Default)]
pub struct IoStats {
    inner: Arc<Counters>,
}

#[derive(Debug, Default)]
struct Counters {
    runs_created: AtomicU64,
    rows_written: AtomicU64,
    bytes_written: AtomicU64,
    rows_read: AtomicU64,
    bytes_read: AtomicU64,
    write_ops: AtomicU64,
    read_ops: AtomicU64,
    /// Modelled (virtual-clock) I/O nanoseconds reported by a throttled
    /// backend, surfaced through the same snapshot as the real counters.
    modelled_io_ns: AtomicU64,
    /// Time the *compute* thread spent blocked on storage: synchronous
    /// block reads/writes, plus stalls against a full spill pipeline or an
    /// empty read-ahead channel.
    io_wait_ns: AtomicU64,
    /// Time background I/O threads spent moving bytes — latency that was
    /// hidden behind computation instead of added to it.
    overlapped_io_ns: AtomicU64,
    /// Blocks whose payload was never read because a skip proved them
    /// irrelevant (offset fast-skipping).
    blocks_skipped: AtomicU64,
    /// Payload bytes those skipped blocks would have cost.
    bytes_skipped: AtomicU64,
    write_latency: LatencyHistogram,
    read_latency: LatencyHistogram,
}

/// A point-in-time copy of the counters, safe to diff and print.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStatsSnapshot {
    /// Number of sorted runs created (the paper's "Runs" column).
    pub runs_created: u64,
    /// Rows written to secondary storage (the paper's "Rows" column).
    pub rows_written: u64,
    /// Bytes written to secondary storage.
    pub bytes_written: u64,
    /// Rows read back during merging.
    pub rows_read: u64,
    /// Bytes read back during merging.
    pub bytes_read: u64,
    /// Count of block-level write requests (network round trips in the
    /// disaggregated-storage model).
    pub write_ops: u64,
    /// Count of block-level read requests.
    pub read_ops: u64,
    /// Modelled I/O time in nanoseconds under the disaggregated-storage
    /// cost model (0 unless a throttled backend reported its virtual
    /// clock into these stats).
    pub modelled_io_ns: u64,
    /// Nanoseconds the compute thread spent blocked on storage (synchronous
    /// I/O, pipeline backpressure, read-ahead waits).
    pub io_wait_ns: u64,
    /// Nanoseconds of I/O performed on background threads, i.e. latency
    /// overlapped with computation rather than added to it.
    pub overlapped_io_ns: u64,
    /// Blocks skipped without reading their payload.
    pub blocks_skipped: u64,
    /// Payload bytes avoided by those skips.
    pub bytes_skipped: u64,
    /// Observed per-request write latencies.
    pub write_latency: LatencySnapshot,
    /// Observed per-request read latencies.
    pub read_latency: LatencySnapshot,
}

impl IoStats {
    /// Fresh counters, all zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records the creation of one sorted run.
    pub fn record_run_created(&self) {
        self.inner.runs_created.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a block write of `rows` rows totalling `bytes` bytes.
    pub fn record_write(&self, rows: u64, bytes: u64) {
        self.inner.rows_written.fetch_add(rows, Ordering::Relaxed);
        self.inner.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        self.inner.write_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a block read of `rows` rows totalling `bytes` bytes.
    pub fn record_read(&self, rows: u64, bytes: u64) {
        self.inner.rows_read.fetch_add(rows, Ordering::Relaxed);
        self.inner.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.inner.read_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// As [`IoStats::record_write`], also recording the request's observed
    /// latency. Callers time one `Instant` pair around the whole block
    /// request — never per row.
    pub fn record_write_timed(&self, rows: u64, bytes: u64, latency: Duration) {
        self.record_write(rows, bytes);
        self.inner.write_latency.record(latency);
    }

    /// As [`IoStats::record_read`], also recording the request's observed
    /// latency.
    pub fn record_read_timed(&self, rows: u64, bytes: u64, latency: Duration) {
        self.record_read(rows, bytes);
        self.inner.read_latency.record(latency);
    }

    /// Adds modelled (virtual-clock) I/O time, as charged by a throttled
    /// backend's cost model.
    pub fn record_modelled_io(&self, modelled: Duration) {
        let ns = modelled.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.inner.modelled_io_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Overwrites the modelled I/O total (used when an operator copies a
    /// backend's virtual clock into its own stats at snapshot time).
    pub fn set_modelled_io_ns(&self, ns: u64) {
        self.inner.modelled_io_ns.store(ns, Ordering::Relaxed);
    }

    /// Records time the compute thread spent blocked on storage.
    pub fn record_io_wait(&self, waited: Duration) {
        let ns = waited.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.inner.io_wait_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records I/O time spent on a background thread (overlapped with
    /// computation).
    pub fn record_overlapped_io(&self, busy: Duration) {
        let ns = busy.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.inner.overlapped_io_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Records one block whose `payload_bytes` were skipped unread.
    pub fn record_block_skip(&self, payload_bytes: u64) {
        self.inner.blocks_skipped.fetch_add(1, Ordering::Relaxed);
        self.inner.bytes_skipped.fetch_add(payload_bytes, Ordering::Relaxed);
    }

    /// Current counter values.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        IoStatsSnapshot {
            runs_created: self.inner.runs_created.load(Ordering::Relaxed),
            rows_written: self.inner.rows_written.load(Ordering::Relaxed),
            bytes_written: self.inner.bytes_written.load(Ordering::Relaxed),
            rows_read: self.inner.rows_read.load(Ordering::Relaxed),
            bytes_read: self.inner.bytes_read.load(Ordering::Relaxed),
            write_ops: self.inner.write_ops.load(Ordering::Relaxed),
            read_ops: self.inner.read_ops.load(Ordering::Relaxed),
            modelled_io_ns: self.inner.modelled_io_ns.load(Ordering::Relaxed),
            io_wait_ns: self.inner.io_wait_ns.load(Ordering::Relaxed),
            overlapped_io_ns: self.inner.overlapped_io_ns.load(Ordering::Relaxed),
            blocks_skipped: self.inner.blocks_skipped.load(Ordering::Relaxed),
            bytes_skipped: self.inner.bytes_skipped.load(Ordering::Relaxed),
            write_latency: self.inner.write_latency.snapshot(),
            read_latency: self.inner.read_latency.snapshot(),
        }
    }

    /// Shorthand for `snapshot().rows_written`.
    pub fn rows_written(&self) -> u64 {
        self.inner.rows_written.load(Ordering::Relaxed)
    }

    /// Shorthand for `snapshot().runs_created`.
    pub fn runs_created(&self) -> u64 {
        self.inner.runs_created.load(Ordering::Relaxed)
    }
}

/// Per-component reconciliation of background-I/O time against the
/// compute thread's waits, so `io_wait_ns` and `overlapped_io_ns` never
/// count the same nanoseconds twice.
///
/// One ledger belongs to one overlap component (a spill pipeline or a
/// prefetching reader). Background work books its storage busy time with
/// [`OverlapLedger::record_busy`]; the compute thread books every blocked
/// interval with [`OverlapLedger::record_wait`] *in addition to* the live
/// `record_io_wait` it already does. When the component shuts down,
/// [`OverlapLedger::settle`] credits `busy − wait` (saturating) as
/// overlapped I/O: the storage time that was genuinely hidden from the
/// compute thread. Per component, `io_wait + overlapped = max(wait, busy)`
/// — never more than the component's own wall time, so summing components
/// can only exceed wall clock when background threads truly ran in
/// parallel.
#[derive(Debug)]
pub(crate) struct OverlapLedger {
    busy_ns: AtomicU64,
    wait_ns: AtomicU64,
    settled: AtomicBool,
    stats: IoStats,
}

impl OverlapLedger {
    /// A fresh ledger settling into `stats`.
    pub(crate) fn new(stats: IoStats) -> Arc<Self> {
        Arc::new(OverlapLedger {
            busy_ns: AtomicU64::new(0),
            wait_ns: AtomicU64::new(0),
            settled: AtomicBool::new(false),
            stats,
        })
    }

    /// Books storage busy time spent on a background thread or pool worker.
    pub(crate) fn record_busy(&self, busy: Duration) {
        let ns = busy.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.busy_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Books an interval the compute thread spent blocked on this
    /// component (the caller also books it as live `io_wait`).
    pub(crate) fn record_wait(&self, waited: Duration) {
        let ns = waited.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.wait_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Credits the hidden portion of the busy time (`busy − wait`) as
    /// overlapped I/O. Idempotent; call on every shutdown path.
    pub(crate) fn settle(&self) {
        if self.settled.swap(true, Ordering::AcqRel) {
            return;
        }
        let busy = self.busy_ns.load(Ordering::Relaxed);
        let wait = self.wait_ns.load(Ordering::Relaxed);
        self.stats.record_overlapped_io(Duration::from_nanos(busy.saturating_sub(wait)));
    }
}

impl IoStatsSnapshot {
    /// Counter-wise difference `self - earlier`; saturates at zero so a
    /// stale snapshot cannot underflow.
    pub fn since(&self, earlier: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            runs_created: self.runs_created.saturating_sub(earlier.runs_created),
            rows_written: self.rows_written.saturating_sub(earlier.rows_written),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            rows_read: self.rows_read.saturating_sub(earlier.rows_read),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            write_ops: self.write_ops.saturating_sub(earlier.write_ops),
            read_ops: self.read_ops.saturating_sub(earlier.read_ops),
            modelled_io_ns: self.modelled_io_ns.saturating_sub(earlier.modelled_io_ns),
            io_wait_ns: self.io_wait_ns.saturating_sub(earlier.io_wait_ns),
            overlapped_io_ns: self.overlapped_io_ns.saturating_sub(earlier.overlapped_io_ns),
            blocks_skipped: self.blocks_skipped.saturating_sub(earlier.blocks_skipped),
            bytes_skipped: self.bytes_skipped.saturating_sub(earlier.bytes_skipped),
            write_latency: self.write_latency.since(&earlier.write_latency),
            read_latency: self.read_latency.since(&earlier.read_latency),
        }
    }

    /// Counter-wise sum with `other`, used when aggregating the traffic of
    /// several sub-operators (segments, groups) that each own their stats.
    pub fn merged(&self, other: &IoStatsSnapshot) -> IoStatsSnapshot {
        IoStatsSnapshot {
            runs_created: self.runs_created.saturating_add(other.runs_created),
            rows_written: self.rows_written.saturating_add(other.rows_written),
            bytes_written: self.bytes_written.saturating_add(other.bytes_written),
            rows_read: self.rows_read.saturating_add(other.rows_read),
            bytes_read: self.bytes_read.saturating_add(other.bytes_read),
            write_ops: self.write_ops.saturating_add(other.write_ops),
            read_ops: self.read_ops.saturating_add(other.read_ops),
            modelled_io_ns: self.modelled_io_ns.saturating_add(other.modelled_io_ns),
            io_wait_ns: self.io_wait_ns.saturating_add(other.io_wait_ns),
            overlapped_io_ns: self.overlapped_io_ns.saturating_add(other.overlapped_io_ns),
            blocks_skipped: self.blocks_skipped.saturating_add(other.blocks_skipped),
            bytes_skipped: self.bytes_skipped.saturating_add(other.bytes_skipped),
            write_latency: self.write_latency.merged(&other.write_latency),
            read_latency: self.read_latency.merged(&other.read_latency),
        }
    }

    /// Total secondary-storage traffic in bytes (written + read).
    pub fn total_bytes(&self) -> u64 {
        self.bytes_written + self.bytes_read
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.record_run_created();
        s.record_write(100, 4096);
        s.record_write(50, 2048);
        s.record_read(10, 512);
        let snap = s.snapshot();
        assert_eq!(snap.runs_created, 1);
        assert_eq!(snap.rows_written, 150);
        assert_eq!(snap.bytes_written, 6144);
        assert_eq!(snap.write_ops, 2);
        assert_eq!(snap.rows_read, 10);
        assert_eq!(snap.read_ops, 1);
        assert_eq!(snap.total_bytes(), 6144 + 512);
    }

    #[test]
    fn clones_share_counters() {
        let a = IoStats::new();
        let b = a.clone();
        a.record_write(1, 10);
        b.record_write(2, 20);
        assert_eq!(a.snapshot().rows_written, 3);
        assert_eq!(b.snapshot().bytes_written, 30);
    }

    #[test]
    fn snapshot_diff_saturates() {
        let s = IoStats::new();
        s.record_write(5, 50);
        let early = s.snapshot();
        s.record_write(5, 50);
        let late = s.snapshot();
        let d = late.since(&early);
        assert_eq!(d.rows_written, 5);
        // Reversed diff saturates to zero instead of wrapping.
        let rev = early.since(&late);
        assert_eq!(rev.rows_written, 0);
    }

    #[test]
    fn timed_records_feed_latency_histograms() {
        let s = IoStats::new();
        s.record_write_timed(10, 4096, Duration::from_micros(100));
        s.record_write_timed(10, 4096, Duration::from_micros(300));
        s.record_read_timed(5, 2048, Duration::from_micros(50));
        let snap = s.snapshot();
        // The plain counters advance exactly as with the untimed calls.
        assert_eq!(snap.rows_written, 20);
        assert_eq!(snap.write_ops, 2);
        assert_eq!(snap.rows_read, 5);
        // And the histograms saw each request once.
        assert_eq!(snap.write_latency.count, 2);
        assert_eq!(snap.write_latency.total_ns, 400_000);
        assert_eq!(snap.write_latency.max_ns, 300_000);
        assert_eq!(snap.read_latency.count, 1);
        assert!(snap.write_latency.p95_ns() >= snap.write_latency.p50_ns());
    }

    #[test]
    fn modelled_io_accumulates_and_overwrites() {
        let s = IoStats::new();
        s.record_modelled_io(Duration::from_millis(2));
        s.record_modelled_io(Duration::from_millis(3));
        assert_eq!(s.snapshot().modelled_io_ns, 5_000_000);
        s.set_modelled_io_ns(42);
        assert_eq!(s.snapshot().modelled_io_ns, 42);
    }

    #[test]
    fn since_diffs_latency_and_modelled_io() {
        let s = IoStats::new();
        s.record_write_timed(1, 8, Duration::from_micros(10));
        s.record_modelled_io(Duration::from_nanos(100));
        let early = s.snapshot();
        s.record_write_timed(1, 8, Duration::from_micros(20));
        s.record_modelled_io(Duration::from_nanos(50));
        let d = s.snapshot().since(&early);
        assert_eq!(d.write_latency.count, 1);
        assert_eq!(d.write_latency.total_ns, 20_000);
        assert_eq!(d.modelled_io_ns, 50);
    }

    #[test]
    fn wait_overlap_and_skip_counters_flow_through_snapshots() {
        let s = IoStats::new();
        s.record_io_wait(Duration::from_micros(5));
        s.record_io_wait(Duration::from_micros(5));
        s.record_overlapped_io(Duration::from_micros(7));
        s.record_block_skip(4096);
        s.record_block_skip(1024);
        let early = s.snapshot();
        assert_eq!(early.io_wait_ns, 10_000);
        assert_eq!(early.overlapped_io_ns, 7_000);
        assert_eq!(early.blocks_skipped, 2);
        assert_eq!(early.bytes_skipped, 5120);
        s.record_block_skip(100);
        s.record_overlapped_io(Duration::from_nanos(1));
        let d = s.snapshot().since(&early);
        assert_eq!(d.blocks_skipped, 1);
        assert_eq!(d.bytes_skipped, 100);
        assert_eq!(d.overlapped_io_ns, 1);
        assert_eq!(d.io_wait_ns, 0);
        let m = early.merged(&d);
        assert_eq!(m.blocks_skipped, 3);
        assert_eq!(m.bytes_skipped, 5220);
        assert_eq!(m.overlapped_io_ns, 7_001);
    }

    #[test]
    fn ledger_settles_only_the_hidden_busy_time() {
        let s = IoStats::new();
        let ledger = OverlapLedger::new(s.clone());
        ledger.record_busy(Duration::from_micros(10));
        ledger.record_wait(Duration::from_micros(3));
        ledger.settle();
        assert_eq!(s.snapshot().overlapped_io_ns, 7_000);
        // Idempotent: a second settle books nothing more.
        ledger.settle();
        assert_eq!(s.snapshot().overlapped_io_ns, 7_000);
    }

    #[test]
    fn ledger_saturates_when_waits_cover_the_busy_time() {
        let s = IoStats::new();
        let ledger = OverlapLedger::new(s.clone());
        ledger.record_busy(Duration::from_micros(5));
        ledger.record_wait(Duration::from_micros(9));
        ledger.settle();
        assert_eq!(s.snapshot().overlapped_io_ns, 0, "nothing was hidden");
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let s = IoStats::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = s.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        s.record_write(1, 8);
                    }
                });
            }
        });
        assert_eq!(s.snapshot().rows_written, 4000);
        assert_eq!(s.snapshot().write_ops, 4000);
    }
}
