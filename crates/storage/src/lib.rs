//! # histok-storage
//!
//! The secondary-storage substrate of `histok`. The paper's environment is a
//! disaggregated storage service reached over the network (§2.1, *Late
//! Materialization*), where sequential run I/O is the only affordable access
//! pattern; this crate reproduces that world on a single machine:
//!
//! * [`StorageBackend`] — where spilled bytes live. Implementations:
//!   [`MemoryBackend`] (tests / analysis), [`FileBackend`] (real buffered
//!   file I/O), [`ThrottledBackend`] (models disaggregated-storage latency
//!   and bandwidth on top of any other backend), and [`FaultBackend`]
//!   (failure injection for tests).
//! * [`RunWriter`] / [`RunReader`] — the sorted-run file format: CRC-checked
//!   blocks of length-prefixed rows, plus per-run metadata ([`RunMeta`]:
//!   row count, first/last key, per-block index).
//! * [`IoStats`] — the experiment currency of the paper: rows and bytes
//!   spilled to and read from secondary storage.
//! * [`RunCatalog`] — tracks live runs for one operator and garbage-collects
//!   them on drop.
//! * [`IoScheduler`] — a fixed-size background worker pool with priority
//!   classes and per-backend in-flight limits; the spill pipeline and
//!   prefetching reader submit block-sized jobs to it instead of each
//!   spawning a dedicated thread.

#![deny(missing_docs)]

pub mod backend;
pub mod catalog;
pub mod crc;
pub mod fault;
pub mod file;
pub mod memory;
pub mod pipeline;
pub mod run;
pub mod scheduler;
pub mod stats;
pub mod throttle;

pub use backend::{SpillReader, SpillWriter, StorageBackend};
pub use catalog::RunCatalog;
pub use fault::{FaultBackend, FaultPlan};
pub use file::FileBackend;
pub use memory::MemoryBackend;
pub use pipeline::{PrefetchingRunReader, SpillPipeline, SPILL_PIPELINE_DEPTH};
pub use run::{BlockMeta, KeyRange, RunMeta, RunReader, RunWriter, DEFAULT_BLOCK_BYTES};
pub use scheduler::{
    CensusGuard, IoClass, IoPriority, IoScheduler, IoSchedulerHandle, IoSchedulerMetrics,
    ThreadCensus,
};
pub use stats::{IoStats, IoStatsSnapshot};
pub use throttle::{ThrottleModel, ThrottledBackend};
