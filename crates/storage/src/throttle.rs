//! Disaggregated-storage latency model.
//!
//! In the paper's production environment "the cost of an I/O is a network
//! round trip, plus the invocation of the storage service, plus an I/O in a
//! shared and busy disk drive" (§2.1). [`ThrottledBackend`] decorates any
//! other backend with that cost model: a fixed per-request latency plus a
//! per-byte bandwidth cost.
//!
//! Two accounting modes are supported:
//!
//! * **real** — the calling thread sleeps, so wall-clock measurements show
//!   the I/O-bound behaviour of the paper's testbed. With the overlapped-I/O
//!   layer the "calling thread" is whichever thread issues the storage
//!   request — a spill-pipeline or prefetch thread when those are enabled —
//!   so real-sleep latency lands on the I/O side and can be hidden by
//!   compute, exactly like a slow remote service;
//! * **virtual** — the cost is accumulated in a shared counter without
//!   sleeping, letting big experiments report modelled I/O time instantly.
//!
//! The virtual clock is shared by every reader/writer handle the backend
//! hands out, and with background I/O threads several of them charge it
//! concurrently; accumulation is a saturating compare-and-swap so concurrent
//! charges neither wrap nor lose updates.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use histok_types::Result;

use crate::backend::{SpillReader, SpillWriter, StorageBackend};

/// The cost model for one storage request direction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThrottleModel {
    /// Fixed cost per request (network round trip + service invocation).
    pub per_op: Duration,
    /// Cost per byte moved (inverse bandwidth).
    pub per_byte: Duration,
    /// When true the thread actually sleeps; when false the cost is only
    /// accumulated in the virtual clock.
    pub sleep: bool,
}

impl ThrottleModel {
    /// A model of a busy disaggregated service: 2 ms per round trip and
    /// ~200 MB/s effective sequential bandwidth. `sleep` defaults to false
    /// (virtual accounting).
    pub fn disaggregated() -> Self {
        ThrottleModel {
            per_op: Duration::from_micros(2_000),
            per_byte: Duration::from_nanos(5),
            sleep: false,
        }
    }

    /// No cost at all (useful to A/B the decorator itself).
    pub fn free() -> Self {
        ThrottleModel { per_op: Duration::ZERO, per_byte: Duration::ZERO, sleep: false }
    }

    /// Enables real sleeping.
    pub fn sleeping(mut self) -> Self {
        self.sleep = true;
        self
    }

    fn cost(&self, bytes: usize) -> Duration {
        // Computed in u128 nanoseconds: `Duration::saturating_mul` takes a
        // u32 factor, so `bytes as u32` would silently truncate requests of
        // 4 GiB and beyond (the paper's experiments move hundreds of GiB).
        let byte_ns = self.per_byte.as_nanos() * bytes as u128;
        let total_ns = self.per_op.as_nanos().saturating_add(byte_ns);
        let secs = (total_ns / 1_000_000_000) as u64;
        let nanos = (total_ns % 1_000_000_000) as u32;
        Duration::new(secs, nanos)
    }
}

/// A [`StorageBackend`] decorator charging a [`ThrottleModel`] per request.
#[derive(Clone)]
pub struct ThrottledBackend<B> {
    inner: B,
    write_model: ThrottleModel,
    read_model: ThrottleModel,
    virtual_ns: Arc<AtomicU64>,
}

impl<B: StorageBackend> ThrottledBackend<B> {
    /// Wraps `inner`, charging `model` for both reads and writes.
    pub fn new(inner: B, model: ThrottleModel) -> Self {
        ThrottledBackend {
            inner,
            write_model: model,
            read_model: model,
            virtual_ns: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Wraps `inner` with separate read and write models.
    pub fn asymmetric(inner: B, write: ThrottleModel, read: ThrottleModel) -> Self {
        ThrottledBackend {
            inner,
            write_model: write,
            read_model: read,
            virtual_ns: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Total modelled I/O time accumulated so far.
    pub fn virtual_io_time(&self) -> Duration {
        Duration::from_nanos(self.virtual_ns.load(Ordering::Relaxed))
    }

    /// Resets the virtual clock (between experiment phases).
    pub fn reset_virtual_clock(&self) {
        self.virtual_ns.store(0, Ordering::Relaxed);
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }
}

fn charge(clock: &AtomicU64, model: &ThrottleModel, bytes: usize) {
    let cost = model.cost(bytes);
    let cost_ns = cost.as_nanos().min(u128::from(u64::MAX)) as u64;
    // Saturating CAS loop: `fetch_add` would wrap on overflow, and with
    // pipeline/prefetch threads many handles charge this clock concurrently.
    let mut current = clock.load(Ordering::Relaxed);
    loop {
        let next = current.saturating_add(cost_ns);
        match clock.compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(observed) => current = observed,
        }
    }
    if model.sleep && !cost.is_zero() {
        std::thread::sleep(cost);
    }
}

struct ThrottledWriter {
    inner: Box<dyn SpillWriter>,
    model: ThrottleModel,
    clock: Arc<AtomicU64>,
}

impl SpillWriter for ThrottledWriter {
    fn write_all(&mut self, data: &[u8]) -> Result<()> {
        charge(&self.clock, &self.model, data.len());
        self.inner.write_all(data)
    }
    fn finish(&mut self) -> Result<u64> {
        charge(&self.clock, &self.model, 0);
        self.inner.finish()
    }
}

struct ThrottledReader {
    inner: Box<dyn SpillReader>,
    model: ThrottleModel,
    clock: Arc<AtomicU64>,
}

impl SpillReader for ThrottledReader {
    fn read_exact(&mut self, buf: &mut [u8]) -> Result<()> {
        charge(&self.clock, &self.model, buf.len());
        self.inner.read_exact(buf)
    }
    fn skip(&mut self, n: u64) -> Result<()> {
        // Skipping costs one round trip but no bandwidth (the service can
        // reposition without shipping bytes).
        charge(&self.clock, &self.model, 0);
        let _ = n;
        self.inner.skip(n)
    }
}

impl<B: StorageBackend> StorageBackend for ThrottledBackend<B> {
    fn create(&self, name: &str) -> Result<Box<dyn SpillWriter>> {
        let inner = self.inner.create(name)?;
        Ok(Box::new(ThrottledWriter {
            inner,
            model: self.write_model,
            clock: self.virtual_ns.clone(),
        }))
    }

    fn open(&self, name: &str) -> Result<Box<dyn SpillReader>> {
        let inner = self.inner.open(name)?;
        Ok(Box::new(ThrottledReader {
            inner,
            model: self.read_model,
            clock: self.virtual_ns.clone(),
        }))
    }

    fn delete(&self, name: &str) -> Result<()> {
        self.inner.delete(name)
    }

    fn size_of(&self, name: &str) -> Result<u64> {
        self.inner.size_of(name)
    }

    fn modelled_io_ns(&self) -> u64 {
        self.virtual_ns.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryBackend;

    #[test]
    fn virtual_clock_accumulates_op_and_byte_costs() {
        let model = ThrottleModel {
            per_op: Duration::from_micros(100),
            per_byte: Duration::from_nanos(10),
            sleep: false,
        };
        let be = ThrottledBackend::new(MemoryBackend::new(), model);
        let mut w = be.create("x").unwrap();
        w.write_all(&[0u8; 1000]).unwrap(); // 100µs + 10µs
        w.finish().unwrap(); // 100µs
        assert_eq!(be.virtual_io_time(), Duration::from_micros(210));

        let mut r = be.open("x").unwrap();
        let mut buf = [0u8; 1000];
        r.read_exact(&mut buf).unwrap(); // +110µs
        assert_eq!(be.virtual_io_time(), Duration::from_micros(320));
    }

    #[test]
    fn reset_clears_clock() {
        let be = ThrottledBackend::new(MemoryBackend::new(), ThrottleModel::disaggregated());
        let mut w = be.create("y").unwrap();
        w.write_all(&[1u8; 10]).unwrap();
        w.finish().unwrap();
        assert!(be.virtual_io_time() > Duration::ZERO);
        be.reset_virtual_clock();
        assert_eq!(be.virtual_io_time(), Duration::ZERO);
    }

    #[test]
    fn free_model_charges_nothing() {
        let be = ThrottledBackend::new(MemoryBackend::new(), ThrottleModel::free());
        let mut w = be.create("z").unwrap();
        w.write_all(&[0u8; 1_000_000]).unwrap();
        w.finish().unwrap();
        assert_eq!(be.virtual_io_time(), Duration::ZERO);
    }

    #[test]
    fn data_flows_through_unmodified() {
        let be = ThrottledBackend::new(MemoryBackend::new(), ThrottleModel::disaggregated());
        let mut w = be.create("data").unwrap();
        w.write_all(b"abcdef").unwrap();
        w.finish().unwrap();
        assert_eq!(be.size_of("data").unwrap(), 6);
        let mut r = be.open("data").unwrap();
        let mut buf = [0u8; 3];
        r.read_exact(&mut buf).unwrap();
        r.skip(1).unwrap();
        let mut rest = [0u8; 2];
        r.read_exact(&mut rest).unwrap();
        assert_eq!(&buf, b"abc");
        assert_eq!(&rest, b"ef");
        be.delete("data").unwrap();
        assert!(be.open("data").is_err());
    }

    #[test]
    fn cost_of_requests_beyond_4gib_does_not_truncate() {
        // 5 GiB at 5 ns/byte is ~26.8 s of bandwidth cost. The old
        // `bytes as u32` truncation would have charged for just 1 GiB.
        let model = ThrottleModel::disaggregated();
        let five_gib: usize = 5 * (1 << 30);
        let cost = model.cost(five_gib);
        let expected_byte_ns = 5u128 * five_gib as u128;
        assert_eq!(
            cost,
            Duration::from_micros(2_000) + Duration::from_nanos(expected_byte_ns as u64)
        );
        assert!(cost > Duration::from_secs(25), "truncated cost: {cost:?}");
    }

    #[test]
    fn modelled_io_is_exposed_through_the_backend_trait() {
        let be = ThrottledBackend::new(MemoryBackend::new(), ThrottleModel::disaggregated());
        let mut w = be.create("m").unwrap();
        w.write_all(&[0u8; 4096]).unwrap();
        w.finish().unwrap();
        let via_trait = (&be as &dyn StorageBackend).modelled_io_ns();
        assert_eq!(Duration::from_nanos(via_trait), be.virtual_io_time());
        assert!(via_trait > 0);
    }

    #[test]
    fn concurrent_charges_neither_wrap_nor_lose_updates() {
        let model = ThrottleModel {
            per_op: Duration::from_nanos(1_000),
            per_byte: Duration::ZERO,
            sleep: false,
        };
        let be = ThrottledBackend::new(MemoryBackend::new(), model);
        let mut w = be.create("c").unwrap();
        w.write_all(&[0u8; 1000]).unwrap();
        w.finish().unwrap();
        be.reset_virtual_clock();
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let be = be.clone();
                std::thread::spawn(move || {
                    let mut r = be.open("c").unwrap();
                    let mut buf = [0u8; 1];
                    for _ in 0..1_000 {
                        r.read_exact(&mut buf).unwrap();
                        r.skip(0).unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // 8 threads × 1000 iterations × 2 charged ops × 1µs each.
        assert_eq!(be.virtual_io_time(), Duration::from_micros(16_000));
    }

    #[test]
    fn charge_saturates_instead_of_wrapping() {
        let clock = AtomicU64::new(u64::MAX - 10);
        let model = ThrottleModel {
            per_op: Duration::from_nanos(1_000),
            per_byte: Duration::ZERO,
            sleep: false,
        };
        charge(&clock, &model, 0);
        assert_eq!(clock.load(Ordering::Relaxed), u64::MAX);
    }

    #[test]
    fn asymmetric_models_charge_separately() {
        let write = ThrottleModel {
            per_op: Duration::from_micros(50),
            per_byte: Duration::ZERO,
            sleep: false,
        };
        let be = ThrottledBackend::asymmetric(MemoryBackend::new(), write, ThrottleModel::free());
        let mut w = be.create("a").unwrap();
        w.write_all(&[0u8; 8]).unwrap();
        w.finish().unwrap();
        let at_finish = be.virtual_io_time();
        assert_eq!(at_finish, Duration::from_micros(100));
        let mut r = be.open("a").unwrap();
        let mut buf = [0u8; 8];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(be.virtual_io_time(), at_finish); // reads are free here
    }
}
