//! The sorted-run file format.
//!
//! A run is a sequence of CRC-checked blocks, each holding a batch of
//! encoded rows in sort order:
//!
//! ```text
//! file   := FILE_MAGIC(u32) version(u32) block* end_block
//! block  := BLOCK_MAGIC(u32) row_count(u32) payload_len(u32) crc32(u32) payload
//! end    := block with row_count == 0 && payload_len == 0
//! ```
//!
//! Blocks target [`DEFAULT_BLOCK_BYTES`] of payload, so spills hit the
//! backend in large sequential requests — the only access pattern that is
//! affordable against the paper's disaggregated storage service. Per-block
//! metadata (row count, byte size, last key) is retained in [`RunMeta`],
//! enabling the §4.1 merge optimizations: a reader can skip whole blocks
//! that an `OFFSET` clause or a cutoff key proves irrelevant.

use std::sync::Arc;

use histok_types::{Error, Result, Row, RowBatch, SortKey, SortOrder};

use crate::backend::{SpillReader, StorageBackend};
use crate::crc::crc32;
use crate::pipeline::SpillPipeline;
use crate::scheduler::IoSchedulerHandle;
use crate::stats::{IoStats, OverlapLedger};

/// Target payload bytes per block (64 KiB).
pub const DEFAULT_BLOCK_BYTES: usize = 64 * 1024;

pub(crate) const FILE_MAGIC: u32 = 0x4853_544B; // "HSTK"
pub(crate) const FILE_VERSION: u32 = 1;
pub(crate) const BLOCK_MAGIC: u32 = 0x424C_4B31; // "BLK1"
pub(crate) const BLOCK_HEADER_BYTES: usize = 16;

/// Decoded block-header fields: `(row_count, payload_len, crc32)`.
type BlockHeader = (u32, u32, u32);

/// Builds the 16-byte framing header for a sealed block payload.
pub(crate) fn encode_block_header(
    rows: u32,
    payload_len: u32,
    crc: u32,
) -> [u8; BLOCK_HEADER_BYTES] {
    let mut header = [0u8; BLOCK_HEADER_BYTES];
    header[0..4].copy_from_slice(&BLOCK_MAGIC.to_le_bytes());
    header[4..8].copy_from_slice(&rows.to_le_bytes());
    header[8..12].copy_from_slice(&payload_len.to_le_bytes());
    header[12..16].copy_from_slice(&crc.to_le_bytes());
    header
}

/// The end-of-run marker: an all-zero-count block header.
pub(crate) fn encode_end_marker() -> [u8; BLOCK_HEADER_BYTES] {
    encode_block_header(0, 0, 0)
}

/// A key interval restricting a range-scoped [`RunReader`]: rows in
/// `[lo, hi)` in output order, or `[lo, hi]` when `hi_inclusive` (used to
/// clip the final merge partition at a cutoff key, where ties survive).
/// `None` bounds are open ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyRange<K> {
    /// First key included (output order); `None` = from the start.
    pub lo: Option<K>,
    /// Upper bound; `None` = to the end of the run.
    pub hi: Option<K>,
    /// When true the upper bound itself is included (`[lo, hi]`).
    pub hi_inclusive: bool,
}

impl<K> KeyRange<K> {
    /// The unbounded range (reads the whole run).
    pub fn all() -> Self {
        KeyRange { lo: None, hi: None, hi_inclusive: false }
    }

    /// `[lo, hi)`: from `lo` (inclusive) up to but excluding `hi`.
    pub fn half_open(lo: Option<K>, hi: Option<K>) -> Self {
        KeyRange { lo, hi, hi_inclusive: false }
    }

    /// True if no bound is set.
    pub fn is_unbounded(&self) -> bool {
        self.lo.is_none() && self.hi.is_none()
    }
}

impl<K: Ord> KeyRange<K> {
    /// True if `key` lies inside the range under `order`.
    pub fn contains(&self, key: &K, order: SortOrder) -> bool {
        if let Some(lo) = &self.lo {
            if order.precedes(key, lo) {
                return false;
            }
        }
        match &self.hi {
            Some(hi) if self.hi_inclusive => !order.follows(key, hi),
            Some(hi) => order.precedes(key, hi),
            None => true,
        }
    }
}

/// Per-reader state of a range-scoped open (see [`RunReader::open_range`]).
struct RangeState<K> {
    range: KeyRange<K>,
    order: SortOrder,
    /// In-range blocks left to read; iteration ends (without touching the
    /// end marker) when this reaches zero.
    blocks_remaining: usize,
    /// True until the first in-range block has been decoded: only that
    /// block can hold rows preceding `lo`.
    trim_lo: bool,
}

/// Metadata of one block within a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockMeta<K> {
    /// Rows in the block.
    pub rows: u32,
    /// Payload bytes (excluding the 16-byte header).
    pub payload_bytes: u32,
    /// The last (worst, in output order) key in the block.
    pub last_key: K,
}

/// Metadata of one finished sorted run.
#[derive(Debug, Clone)]
pub struct RunMeta<K> {
    /// Backend object name.
    pub name: String,
    /// Total rows in the run.
    pub rows: u64,
    /// Total bytes on storage (headers included).
    pub bytes: u64,
    /// First (best) key, `None` for an empty run.
    pub first_key: Option<K>,
    /// Last (worst) key, `None` for an empty run.
    pub last_key: Option<K>,
    /// Per-block index in file order.
    pub blocks: Vec<BlockMeta<K>>,
    /// Sort direction the rows were written in.
    pub order: SortOrder,
}

impl<K> RunMeta<K> {
    /// True if the run holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }
}

/// Writes rows (already in sort order) into a run object.
///
/// The writer enforces the sort invariant: appending a row whose key sorts
/// before the previous one is an error, which catches run-generation bugs
/// at the earliest possible moment.
pub struct RunWriter<K: SortKey> {
    name: String,
    sink: BlockSink,
    order: SortOrder,
    block_target: usize,
    block_buf: Vec<u8>,
    rows_in_block: u32,
    blocks: Vec<BlockMeta<K>>,
    rows: u64,
    bytes: u64,
    first_key: Option<K>,
    /// Last key of the most recently *sealed* block, decoded once per block
    /// at flush time. The hot append path never clones a key: the previous
    /// row's key lives in `block_buf` (at `last_row_at`) and is only decoded
    /// when the normalized-prefix order check is inconclusive.
    boundary_key: Option<K>,
    /// Normalized prefix of the most recently appended key.
    last_prefix: u64,
    /// Byte offset in `block_buf` where the most recent row's encoding
    /// starts.
    last_row_at: usize,
    stats: IoStats,
    finished: bool,
}

/// Where sealed blocks go: either the calling thread CRCs and writes them
/// synchronously, or they are handed to a [`SpillPipeline`] writer thread
/// (double-buffered, bounded backpressure — see `pipeline.rs`).
enum BlockSink {
    Sync(Box<dyn crate::backend::SpillWriter>),
    Pipelined(SpillPipeline),
}

impl<K: SortKey> RunWriter<K> {
    /// Starts a new run named `name` on `backend`.
    pub fn create(
        backend: &dyn StorageBackend,
        name: impl Into<String>,
        order: SortOrder,
        stats: IoStats,
    ) -> Result<Self> {
        Self::with_options(backend, name, order, stats, DEFAULT_BLOCK_BYTES, false)
    }

    /// Starts a run with a custom block payload target (tests use small
    /// blocks to exercise the block machinery).
    pub fn with_block_bytes(
        backend: &dyn StorageBackend,
        name: impl Into<String>,
        order: SortOrder,
        stats: IoStats,
        block_target: usize,
    ) -> Result<Self> {
        Self::with_options(backend, name, order, stats, block_target, false)
    }

    /// Starts a run with a custom block target and, when `pipelined`, a
    /// background writer thread that CRCs and writes sealed blocks while
    /// the caller keeps appending into the next one.
    pub fn with_options(
        backend: &dyn StorageBackend,
        name: impl Into<String>,
        order: SortOrder,
        stats: IoStats,
        block_target: usize,
        pipelined: bool,
    ) -> Result<Self> {
        Self::with_io(backend, name, order, stats, block_target, pipelined, None)
    }

    /// As [`RunWriter::with_options`], but a pipelined writer submits its
    /// block writes to `scheduler`'s shared worker pool (when given)
    /// instead of spawning a dedicated thread.
    pub fn with_io(
        backend: &dyn StorageBackend,
        name: impl Into<String>,
        order: SortOrder,
        stats: IoStats,
        block_target: usize,
        pipelined: bool,
        scheduler: Option<IoSchedulerHandle>,
    ) -> Result<Self> {
        if block_target == 0 {
            return Err(Error::InvalidConfig("block target must be positive".into()));
        }
        let name = name.into();
        let mut writer = backend.create(&name)?;
        let mut header = Vec::with_capacity(8);
        header.extend_from_slice(&FILE_MAGIC.to_le_bytes());
        header.extend_from_slice(&FILE_VERSION.to_le_bytes());
        let sink = if pipelined {
            // The file header is written by the background side, so the
            // operator thread performs no storage request at all here.
            match scheduler {
                Some(handle) => BlockSink::Pipelined(SpillPipeline::spawn_scheduled(
                    writer,
                    header.clone(),
                    stats.clone(),
                    handle,
                )),
                None => BlockSink::Pipelined(SpillPipeline::spawn(
                    writer,
                    header.clone(),
                    stats.clone(),
                )),
            }
        } else {
            writer.write_all(&header)?;
            BlockSink::Sync(writer)
        };
        Ok(RunWriter {
            name,
            sink,
            order,
            block_target,
            block_buf: Vec::with_capacity(block_target + 256),
            rows_in_block: 0,
            blocks: Vec::new(),
            rows: 0,
            bytes: header.len() as u64,
            first_key: None,
            boundary_key: None,
            last_prefix: 0,
            last_row_at: 0,
            stats,
            finished: false,
        })
    }

    /// Appends the next row. Keys must be non-decreasing in output order.
    pub fn append(&mut self, row: &Row<K>) -> Result<()> {
        self.append_with_prefix(row, row.key.norm_prefix())
    }

    /// Appends every row of `batch`, reusing the batch's pre-computed
    /// prefix column for the order checks — the batched merge path seals
    /// blocks without recomputing (or cloning) a single key.
    pub fn append_batch(&mut self, batch: &RowBatch<K>) -> Result<()> {
        for (row, &prefix) in batch.rows.iter().zip(&batch.prefixes) {
            self.append_with_prefix(row, prefix)?;
        }
        Ok(())
    }

    /// As [`RunWriter::append`], with the row's normalized prefix already
    /// in hand (batched callers carry it in their code column).
    #[inline]
    pub fn append_with_prefix(&mut self, row: &Row<K>, prefix: u64) -> Result<()> {
        if self.rows > 0 {
            self.check_order(row, prefix)?;
        } else {
            self.first_key = Some(row.key.clone());
        }
        self.last_prefix = prefix;
        self.last_row_at = self.block_buf.len();
        row.encode(&mut self.block_buf);
        self.rows_in_block += 1;
        self.rows += 1;
        if self.block_buf.len() >= self.block_target {
            self.flush_block()?;
        }
        Ok(())
    }

    /// The sort-invariant check: normalized-prefix comparison decides almost
    /// every append; the previous key is decoded from the block buffer only
    /// when the prefixes tie inconclusively (or to format an error).
    fn check_order(&self, row: &Row<K>, prefix: u64) -> Result<()> {
        let out_of_order = if prefix != self.last_prefix {
            // Differing normalized prefixes are decisive.
            match self.order {
                SortOrder::Ascending => prefix < self.last_prefix,
                SortOrder::Descending => prefix > self.last_prefix,
            }
        } else if K::norm_prefix_is_exact() {
            false // equal prefixes ⇒ equal keys ⇒ tie, which is allowed
        } else {
            match self.decode_last_key() {
                Some(last) => self.order.precedes(&row.key, &last),
                None => false,
            }
        };
        if out_of_order {
            return Err(Error::InvalidConfig(format!(
                "rows appended out of order: {:?} after {:?}",
                row.key,
                self.decode_last_key()
            )));
        }
        Ok(())
    }

    /// Decodes the most recently appended key: from the block buffer if the
    /// current block holds rows, else the sealed-block boundary key.
    fn decode_last_key(&self) -> Option<K> {
        if self.rows_in_block > 0 {
            let mut slice = &self.block_buf[self.last_row_at..];
            Row::<K>::decode(&mut slice).ok().map(|r| r.key)
        } else {
            self.boundary_key.clone()
        }
    }

    fn flush_block(&mut self) -> Result<()> {
        if self.rows_in_block == 0 {
            return Ok(());
        }
        // The block's last key is decoded once here, at seal time — the
        // per-row append path only recorded where its encoding starts.
        self.boundary_key = Some(
            self.decode_last_key()
                .ok_or_else(|| Error::Corrupt("undecodable row in write buffer".into()))?,
        );
        let payload_len = self.block_buf.len() as u32;
        match &mut self.sink {
            BlockSink::Sync(writer) => {
                let crc = crc32(&self.block_buf);
                let header = encode_block_header(self.rows_in_block, payload_len, crc);
                // One Instant pair around the whole block request — never
                // per row. The compute thread is blocked for the duration,
                // so the elapsed time is also I/O wait.
                let started = std::time::Instant::now();
                writer.write_all(&header)?;
                writer.write_all(&self.block_buf)?;
                let elapsed = started.elapsed();
                self.stats.record_write_timed(
                    self.rows_in_block as u64,
                    BLOCK_HEADER_BYTES as u64 + payload_len as u64,
                    elapsed,
                );
                self.stats.record_io_wait(elapsed);
            }
            BlockSink::Pipelined(pipeline) => {
                // Hand the sealed payload to the writer thread (it CRCs,
                // frames, writes, and books the stats) and start filling a
                // fresh buffer. Blocks only when ≥2 blocks are in flight.
                let payload = std::mem::replace(
                    &mut self.block_buf,
                    Vec::with_capacity(self.block_target + 256),
                );
                pipeline.write_block(self.rows_in_block, payload)?;
            }
        }
        self.bytes += BLOCK_HEADER_BYTES as u64 + payload_len as u64;
        self.blocks.push(BlockMeta {
            rows: self.rows_in_block,
            payload_bytes: payload_len,
            last_key: self.boundary_key.clone().expect("non-empty block implies a last key"),
        });
        self.block_buf.clear();
        self.rows_in_block = 0;
        self.last_row_at = 0;
        Ok(())
    }

    /// Rows appended so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// The backend object name this writer is filling (callers use it to
    /// clean up a half-written object after a mid-merge error).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The last appended key, if any — decoded from the write buffer on
    /// demand; the writer keeps no per-row key copy.
    pub fn last_key(&self) -> Option<K> {
        if self.rows == 0 {
            return None;
        }
        self.decode_last_key()
    }

    /// Seals the run and returns its metadata.
    pub fn finish(mut self) -> Result<RunMeta<K>> {
        self.flush_block()?;
        match &mut self.sink {
            BlockSink::Sync(writer) => {
                // End marker: an all-zero block header.
                writer.write_all(&encode_end_marker())?;
                writer.finish()?;
            }
            BlockSink::Pipelined(pipeline) => {
                // The pipeline writes the end marker, finishes the backend
                // object, joins its thread, and surfaces any latched error.
                pipeline.finish()?;
            }
        }
        self.bytes += BLOCK_HEADER_BYTES as u64;
        self.stats.record_run_created();
        self.finished = true;
        Ok(RunMeta {
            name: self.name.clone(),
            rows: self.rows,
            bytes: self.bytes,
            first_key: self.first_key.clone(),
            last_key: self.boundary_key.clone(),
            blocks: std::mem::take(&mut self.blocks),
            order: self.order,
        })
    }
}

/// Streams rows back out of a finished run in sort order.
///
/// Implements `Iterator<Item = Result<Row<K>>>`. Blocks are CRC-verified as
/// they are decoded; [`RunReader::skip_rows`] skips whole blocks without
/// reading their payload where possible.
pub struct RunReader<K: SortKey> {
    reader: Box<dyn SpillReader>,
    stats: IoStats,
    /// Decoded rows of the current block, yielded front to back.
    current: std::collections::VecDeque<Row<K>>,
    /// Normalized prefix of each buffered row, aligned with `current` —
    /// computed once at decode time and handed out with the batch.
    current_prefixes: std::collections::VecDeque<u64>,
    done: bool,
    rows_yielded: u64,
    /// `Some` when the reader is driven by background prefetch: its
    /// block-read time is then booked into the component's overlap ledger
    /// (settled as overlapped I/O at shutdown) instead of compute-thread
    /// I/O wait.
    ledger: Option<Arc<OverlapLedger>>,
    /// `Some` for a range-scoped reader (see [`RunReader::open_range`]).
    range: Option<RangeState<K>>,
}

impl<K: SortKey> RunReader<K> {
    /// Opens `meta`'s object on `backend`.
    pub fn open(backend: &dyn StorageBackend, meta: &RunMeta<K>, stats: IoStats) -> Result<Self> {
        Self::open_named(backend, &meta.name, stats)
    }

    /// Opens a run by object name (the file is self-delimiting).
    pub fn open_named(backend: &dyn StorageBackend, name: &str, stats: IoStats) -> Result<Self> {
        let mut reader = backend.open(name)?;
        let mut header = [0u8; 8];
        reader.read_exact(&mut header)?;
        let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
        let version = u32::from_le_bytes(header[4..8].try_into().unwrap());
        if magic != FILE_MAGIC {
            return Err(Error::Corrupt(format!("bad run magic {magic:#x} in {name}")));
        }
        if version != FILE_VERSION {
            return Err(Error::Corrupt(format!("unsupported run version {version} in {name}")));
        }
        Ok(RunReader {
            reader,
            stats,
            current: std::collections::VecDeque::new(),
            current_prefixes: std::collections::VecDeque::new(),
            done: false,
            rows_yielded: 0,
            ledger: None,
            range: None,
        })
    }

    /// Opens `meta`'s object scoped to the rows inside `range`.
    ///
    /// The per-block `last_key` index decides which blocks can contain
    /// in-range rows: blocks wholly before `lo` are skipped with **one**
    /// byte-offset seek (never read, booked as `blocks_skipped` /
    /// `bytes_skipped`), and blocks wholly past the upper bound are booked
    /// as skipped at open time and never visited — iteration ends after the
    /// last in-range block without reading the end marker. Rows of the
    /// first and last in-range block that fall outside the bounds are
    /// dropped after decode (a boundary block may straddle the range).
    ///
    /// Composes with [`crate::PrefetchingRunReader`]: the bounds are
    /// enforced inside the block-load path, so prefetch starts at the seek
    /// point and stops at the range end.
    pub fn open_range(
        backend: &dyn StorageBackend,
        meta: &RunMeta<K>,
        stats: IoStats,
        range: KeyRange<K>,
    ) -> Result<Self> {
        let mut reader = Self::open(backend, meta, stats)?;
        if range.is_unbounded() {
            return Ok(reader);
        }
        let order = meta.order;
        let blocks = &meta.blocks;
        if blocks.is_empty() {
            reader.done = true;
            return Ok(reader);
        }
        // First block that can hold a row ≥ lo: every earlier block has
        // last_key < lo, and a block's rows all sort at or before its last
        // key, so those blocks are wholly out of range.
        let start = match &range.lo {
            Some(lo) => blocks.partition_point(|b| order.precedes(&b.last_key, lo)),
            None => 0,
        };
        // Last block that can hold an in-range row: the first whose
        // last_key reaches the upper bound (it may straddle). Every later
        // block's rows sort at or after that key, hence past the bound.
        let stop = match &range.hi {
            Some(hi) if range.hi_inclusive => {
                blocks.partition_point(|b| !order.follows(&b.last_key, hi)).min(blocks.len() - 1)
            }
            Some(hi) => {
                blocks.partition_point(|b| order.precedes(&b.last_key, hi)).min(blocks.len() - 1)
            }
            None => blocks.len() - 1,
        };
        if start >= blocks.len() || start > stop {
            // The whole run sorts outside the range: nothing to read.
            for b in blocks {
                reader.stats.record_block_skip(u64::from(b.payload_bytes));
            }
            reader.done = true;
            return Ok(reader);
        }
        // Skip the prefix in one byte-offset seek; each skipped block is
        // booked individually (it was proven irrelevant by the index).
        let mut prefix_bytes = 0u64;
        for b in &blocks[..start] {
            prefix_bytes += BLOCK_HEADER_BYTES as u64 + u64::from(b.payload_bytes);
            reader.stats.record_block_skip(u64::from(b.payload_bytes));
        }
        if prefix_bytes > 0 {
            reader.reader.skip(prefix_bytes)?;
        }
        // The suffix past the last in-range block is never visited.
        for b in &blocks[stop + 1..] {
            reader.stats.record_block_skip(u64::from(b.payload_bytes));
        }
        reader.range =
            Some(RangeState { range, order, blocks_remaining: stop - start + 1, trim_lo: true });
        Ok(reader)
    }

    /// Marks the reader as driven by background prefetch: its block-read
    /// time is booked into `ledger` (and settled as overlapped I/O when
    /// the owning component shuts down) instead of compute-side I/O wait.
    pub(crate) fn set_ledger(&mut self, ledger: Option<Arc<OverlapLedger>>) {
        self.ledger = ledger;
    }

    /// The shared I/O stats this reader records into.
    pub(crate) fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Reads the next block header; `Ok(None)` at the end marker. Also
    /// returns the time the 16-byte header read took, so callers can fold
    /// it into the block's timed span (the recorded byte count includes
    /// the header, so the measured span must too).
    fn read_block_header(&mut self) -> Result<(Option<BlockHeader>, std::time::Duration)> {
        let mut header = [0u8; BLOCK_HEADER_BYTES];
        let started = std::time::Instant::now();
        self.reader.read_exact(&mut header)?;
        let elapsed = started.elapsed();
        let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
        if magic != BLOCK_MAGIC {
            return Err(Error::Corrupt(format!("bad block magic {magic:#x}")));
        }
        let rows = u32::from_le_bytes(header[4..8].try_into().unwrap());
        let payload_len = u32::from_le_bytes(header[8..12].try_into().unwrap());
        let crc = u32::from_le_bytes(header[12..16].try_into().unwrap());
        if rows == 0 && payload_len == 0 {
            return Ok((None, elapsed));
        }
        Ok((Some((rows, payload_len, crc)), elapsed))
    }

    /// Reads, verifies and decodes one block (whose header was already
    /// consumed) into `self.current`. `header_elapsed` is the time the
    /// header read took; the recorded span covers header + payload, exactly
    /// matching the recorded byte count.
    fn decode_block(
        &mut self,
        rows: u32,
        payload_len: u32,
        crc: u32,
        header_elapsed: std::time::Duration,
    ) -> Result<()> {
        let mut payload = vec![0u8; payload_len as usize];
        // One Instant pair around the whole block request — never per row.
        let started = std::time::Instant::now();
        self.reader.read_exact(&mut payload)?;
        let elapsed = header_elapsed + started.elapsed();
        if crc32(&payload) != crc {
            return Err(Error::Corrupt("block CRC mismatch".into()));
        }
        self.stats.record_read_timed(
            rows as u64,
            BLOCK_HEADER_BYTES as u64 + payload_len as u64,
            elapsed,
        );
        match &self.ledger {
            Some(ledger) => ledger.record_busy(elapsed),
            None => self.stats.record_io_wait(elapsed),
        }
        // Decode out of one refcounted buffer: every row's payload becomes
        // a zero-copy slice of the block allocation instead of a fresh
        // per-row `Vec` (`Buf for &[u8]` copies; `Buf for Bytes` does not).
        let mut buf = bytes::Bytes::from(payload);
        self.current.reserve(rows as usize);
        self.current_prefixes.reserve(rows as usize);
        for _ in 0..rows {
            let row: Row<K> = Row::decode(&mut buf)?;
            self.current_prefixes.push_back(row.key.norm_prefix());
            self.current.push_back(row);
        }
        if !buf.is_empty() {
            return Err(Error::Corrupt("trailing bytes after last row in block".into()));
        }
        self.trim_to_range();
        Ok(())
    }

    /// Drops decoded rows outside the active range. Only the first in-range
    /// block can hold rows preceding `lo` and only the last one rows past
    /// the upper bound (rows are non-decreasing in output order), but the
    /// trims are cheap no-ops on interior blocks.
    fn trim_to_range(&mut self) {
        let Some(state) = &mut self.range else { return };
        state.blocks_remaining = state.blocks_remaining.saturating_sub(1);
        if state.trim_lo {
            state.trim_lo = false;
            if let Some(lo) = &state.range.lo {
                while self.current.front().is_some_and(|r| state.order.precedes(&r.key, lo)) {
                    self.current.pop_front();
                    self.current_prefixes.pop_front();
                }
            }
        }
        if let Some(hi) = &state.range.hi {
            let out = |key: &K| {
                if state.range.hi_inclusive {
                    state.order.follows(key, hi)
                } else {
                    !state.order.precedes(key, hi)
                }
            };
            while self.current.back().is_some_and(|r| out(&r.key)) {
                self.current.pop_back();
                self.current_prefixes.pop_back();
            }
        }
    }

    /// True when a range-scoped reader has consumed its last in-range
    /// block; iteration must stop without touching the file further.
    fn range_exhausted(&self) -> bool {
        self.range.as_ref().is_some_and(|s| s.blocks_remaining == 0)
    }

    fn load_next_block(&mut self) -> Result<bool> {
        debug_assert!(self.current.is_empty());
        if self.range_exhausted() {
            self.done = true;
            return Ok(false);
        }
        let (header, header_elapsed) = self.read_block_header()?;
        let Some((rows, payload_len, crc)) = header else {
            self.done = true;
            return Ok(false);
        };
        self.decode_block(rows, payload_len, crc, header_elapsed)?;
        Ok(true)
    }

    /// Drains the buffered rows and their prefix column into one batch.
    fn take_batch(&mut self) -> RowBatch<K> {
        let rows = Vec::from(std::mem::take(&mut self.current));
        let prefixes = Vec::from(std::mem::take(&mut self.current_prefixes));
        self.rows_yielded += rows.len() as u64;
        RowBatch { rows, prefixes }
    }

    /// Drains the buffered rows, or reads and decodes the next block and
    /// returns it as one batch (rows plus prefix column); `Ok(None)` at end
    /// of run. This is both the merge loop's batched pull and the unit of
    /// work a prefetch thread ships per channel message.
    pub fn next_batch(&mut self) -> Result<Option<RowBatch<K>>> {
        if !self.current.is_empty() {
            return Ok(Some(self.take_batch()));
        }
        if self.done {
            return Ok(None);
        }
        if self.load_next_block()? {
            Ok(Some(self.take_batch()))
        } else {
            Ok(None)
        }
    }

    /// Skips the next `n` rows, avoiding payload reads for whole skipped
    /// blocks (used by `OFFSET` positioning, §4.1).
    pub fn skip_rows(&mut self, mut n: u64) -> Result<()> {
        // First drain buffered rows.
        while n > 0 {
            if let Some(_row) = self.current.pop_front() {
                self.current_prefixes.pop_front();
                self.rows_yielded += 1;
                n -= 1;
                continue;
            }
            if self.done || self.range_exhausted() {
                self.done = true;
                return Err(Error::Corrupt("skip past end of run".into()));
            }
            // Peek the next block header; skip whole blocks without decode.
            let (header, header_elapsed) = self.read_block_header()?;
            let Some((rows, payload_len, crc)) = header else {
                self.done = true;
                return Err(Error::Corrupt("skip past end of run".into()));
            };
            // A range-scoped reader must always decode: the header's row
            // count includes rows outside the range, so the whole-block
            // shortcut would over-count the skip.
            if self.range.is_none() && u64::from(rows) <= n {
                // Whole-block skip: the payload is never read, which is the
                // point — book it in the skip counters, not as a read.
                self.reader.skip(payload_len as u64)?;
                self.stats.record_block_skip(payload_len as u64);
                self.rows_yielded += u64::from(rows);
                n -= u64::from(rows);
            } else {
                // Partially-skipped block: decode it, with the same timed
                // span / byte-count pairing as a normal block load.
                self.decode_block(rows, payload_len, crc, header_elapsed)?;
            }
        }
        Ok(())
    }

    /// Rows yielded (or skipped) so far.
    pub fn rows_yielded(&self) -> u64 {
        self.rows_yielded
    }
}

impl<K: SortKey> Iterator for RunReader<K> {
    type Item = Result<Row<K>>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(row) = self.current.pop_front() {
                self.current_prefixes.pop_front();
                self.rows_yielded += 1;
                return Some(Ok(row));
            }
            if self.done {
                return None;
            }
            match self.load_next_block() {
                Ok(true) => continue,
                Ok(false) => return None,
                Err(e) => {
                    self.done = true;
                    return Some(Err(e));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::MemoryBackend;
    use histok_types::F64Key;

    fn write_run(
        backend: &MemoryBackend,
        name: &str,
        keys: &[u64],
        block_bytes: usize,
    ) -> RunMeta<u64> {
        let stats = IoStats::new();
        let mut w =
            RunWriter::with_block_bytes(backend, name, SortOrder::Ascending, stats, block_bytes)
                .unwrap();
        for &k in keys {
            w.append(&Row::new(k, vec![k as u8; 3])).unwrap();
        }
        w.finish().unwrap()
    }

    #[test]
    fn roundtrip_single_block() {
        let be = MemoryBackend::new();
        let meta = write_run(&be, "r1", &[1, 2, 3, 4, 5], DEFAULT_BLOCK_BYTES);
        assert_eq!(meta.rows, 5);
        assert_eq!(meta.first_key, Some(1));
        assert_eq!(meta.last_key, Some(5));
        assert_eq!(meta.blocks.len(), 1);

        let stats = IoStats::new();
        let reader = RunReader::open(&be, &meta, stats.clone()).unwrap();
        let keys: Vec<u64> = reader.map(|r| r.unwrap().key).collect();
        assert_eq!(keys, vec![1, 2, 3, 4, 5]);
        assert_eq!(stats.snapshot().rows_read, 5);
    }

    #[test]
    fn roundtrip_many_blocks() {
        let be = MemoryBackend::new();
        let keys: Vec<u64> = (0..1000).collect();
        let meta = write_run(&be, "r2", &keys, 64); // tiny blocks
        assert!(meta.blocks.len() > 10, "expected many blocks, got {}", meta.blocks.len());
        assert_eq!(meta.blocks.iter().map(|b| b.rows as u64).sum::<u64>(), 1000);

        let reader = RunReader::open(&be, &meta, IoStats::new()).unwrap();
        let got: Vec<u64> = reader.map(|r| r.unwrap().key).collect();
        assert_eq!(got, keys);
    }

    #[test]
    fn empty_run_roundtrips() {
        let be = MemoryBackend::new();
        let meta = write_run(&be, "empty", &[], DEFAULT_BLOCK_BYTES);
        assert!(meta.is_empty());
        assert_eq!(meta.first_key, None);
        let mut reader = RunReader::open(&be, &meta, IoStats::new()).unwrap();
        assert!(reader.next().is_none());
    }

    #[test]
    fn out_of_order_append_rejected() {
        let be = MemoryBackend::new();
        let mut w: RunWriter<u64> =
            RunWriter::create(&be, "bad", SortOrder::Ascending, IoStats::new()).unwrap();
        w.append(&Row::key_only(10)).unwrap();
        w.append(&Row::key_only(10)).unwrap(); // ties allowed
        assert!(w.append(&Row::key_only(9)).is_err());
    }

    #[test]
    fn descending_runs_enforce_descending_order() {
        let be = MemoryBackend::new();
        let mut w: RunWriter<u64> =
            RunWriter::create(&be, "desc", SortOrder::Descending, IoStats::new()).unwrap();
        w.append(&Row::key_only(10)).unwrap();
        w.append(&Row::key_only(5)).unwrap();
        assert!(w.append(&Row::key_only(6)).is_err());
    }

    #[test]
    fn order_check_decodes_previous_key_on_shared_prefixes() {
        use histok_types::BytesKey;
        // All keys share a >8-byte prefix, so the normalized-prefix fast
        // path is inconclusive and the previous key must be decoded from
        // the write buffer.
        let be = MemoryBackend::new();
        let key = |suffix: &str| BytesKey::new(format!("shared-long-prefix-{suffix}"));
        let mut w: RunWriter<BytesKey> =
            RunWriter::with_block_bytes(&be, "bk", SortOrder::Ascending, IoStats::new(), 96)
                .unwrap();
        w.append(&Row::key_only(key("aaa"))).unwrap();
        w.append(&Row::key_only(key("aaa"))).unwrap(); // ties allowed
        w.append(&Row::key_only(key("bbb"))).unwrap();
        assert_eq!(w.last_key(), Some(key("bbb")));
        assert!(w.append(&Row::key_only(key("abc"))).is_err());
        // The check still works across a block seal (previous key no longer
        // in the buffer): append until a block flushes, then go backwards.
        let mut w2: RunWriter<BytesKey> =
            RunWriter::with_block_bytes(&be, "bk2", SortOrder::Ascending, IoStats::new(), 64)
                .unwrap();
        for i in 0..10 {
            w2.append(&Row::key_only(key(&format!("x{i:03}")))).unwrap();
        }
        assert!(w2.append(&Row::key_only(key("x000"))).is_err());
        let meta = w2.finish().unwrap();
        assert_eq!(meta.last_key, Some(key("x009")));
        assert_eq!(meta.blocks.last().unwrap().last_key, key("x009"));
    }

    #[test]
    fn stats_count_rows_and_runs() {
        let be = MemoryBackend::new();
        let stats = IoStats::new();
        let mut w: RunWriter<u64> =
            RunWriter::create(&be, "s", SortOrder::Ascending, stats.clone()).unwrap();
        for k in 0..100u64 {
            w.append(&Row::key_only(k)).unwrap();
        }
        let meta = w.finish().unwrap();
        let snap = stats.snapshot();
        assert_eq!(snap.runs_created, 1);
        assert_eq!(snap.rows_written, 100);
        assert_eq!(snap.bytes_written + 8 + 16, meta.bytes); // + file header + end marker
    }

    #[test]
    fn skip_rows_jumps_blocks() {
        let be = MemoryBackend::new();
        let keys: Vec<u64> = (0..500).collect();
        let meta = write_run(&be, "skip", &keys, 128);
        let stats = IoStats::new();
        let mut reader = RunReader::open(&be, &meta, stats.clone()).unwrap();
        reader.skip_rows(400).unwrap();
        let rest: Vec<u64> = reader.by_ref().map(|r| r.unwrap().key).collect();
        assert_eq!(rest, (400..500).collect::<Vec<_>>());
        // Whole skipped blocks were not counted as reads.
        assert!(stats.snapshot().rows_read < 500);
        assert_eq!(reader.rows_yielded(), 500);
    }

    #[test]
    fn skip_past_end_is_an_error() {
        let be = MemoryBackend::new();
        let meta = write_run(&be, "short", &[1, 2, 3], DEFAULT_BLOCK_BYTES);
        let mut reader = RunReader::open(&be, &meta, IoStats::new()).unwrap();
        assert!(reader.skip_rows(4).is_err());
    }

    #[test]
    fn corrupt_payload_detected_by_crc() {
        let be = MemoryBackend::new();
        let meta = write_run(&be, "c", &(0..50).collect::<Vec<_>>(), DEFAULT_BLOCK_BYTES);
        // Corrupt one payload byte by rewriting the object through a fresh
        // writer with a flipped byte.
        let mut reader = be.open(&meta.name).unwrap();
        let mut all = vec![0u8; meta.bytes as usize];
        reader.read_exact(&mut all).unwrap();
        all[8 + BLOCK_HEADER_BYTES + 3] ^= 0xFF; // inside first block payload
        let mut w = be.create(&meta.name).unwrap();
        w.write_all(&all).unwrap();
        w.finish().unwrap();

        let mut r = RunReader::<u64>::open(&be, &meta, IoStats::new()).unwrap();
        let first = r.next().unwrap();
        assert!(matches!(first, Err(Error::Corrupt(_))));
        assert!(r.next().is_none(), "reader fuses after an error");
    }

    #[test]
    fn bad_magic_rejected() {
        let be = MemoryBackend::new();
        let mut w = be.create("junk").unwrap();
        w.write_all(&[0u8; 64]).unwrap();
        w.finish().unwrap();
        assert!(RunReader::<u64>::open_named(&be, "junk", IoStats::new()).is_err());
    }

    #[test]
    fn f64_keys_flow_through_runs() {
        let be = MemoryBackend::new();
        let mut w: RunWriter<F64Key> =
            RunWriter::create(&be, "f", SortOrder::Ascending, IoStats::new()).unwrap();
        for i in 0..10 {
            w.append(&Row::key_only(F64Key(i as f64 / 10.0))).unwrap();
        }
        let meta = w.finish().unwrap();
        let reader = RunReader::open(&be, &meta, IoStats::new()).unwrap();
        let keys: Vec<f64> = reader.map(|r| r.unwrap().key.get()).collect();
        assert_eq!(keys.len(), 10);
        assert!(keys.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn payloads_are_preserved() {
        let be = MemoryBackend::new();
        let mut w: RunWriter<u64> =
            RunWriter::create(&be, "p", SortOrder::Ascending, IoStats::new()).unwrap();
        for k in 0..20u64 {
            w.append(&Row::new(k, format!("payload-{k}").into_bytes())).unwrap();
        }
        let meta = w.finish().unwrap();
        let reader = RunReader::open(&be, &meta, IoStats::new()).unwrap();
        for (i, row) in reader.enumerate() {
            let row = row.unwrap();
            assert_eq!(row.payload, format!("payload-{i}").as_bytes());
        }
    }
}
