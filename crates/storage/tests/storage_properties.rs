//! Property tests of the run-file layer: arbitrary rows, payload sizes and
//! block sizes must round-trip bit-exactly through both backends, and
//! `skip_rows` must land exactly where sequential reading would.

use proptest::prelude::*;

use histok_storage::{FileBackend, IoStats, MemoryBackend, RunReader, RunWriter, StorageBackend};
use histok_types::{Row, SortOrder};

fn write_rows(
    backend: &dyn StorageBackend,
    rows: &[(u64, Vec<u8>)],
    block_bytes: usize,
) -> histok_storage::RunMeta<u64> {
    let mut w = RunWriter::with_block_bytes(
        backend,
        "prop-run",
        SortOrder::Ascending,
        IoStats::new(),
        block_bytes,
    )
    .unwrap();
    for (key, payload) in rows {
        w.append(&Row::new(*key, payload.clone())).unwrap();
    }
    w.finish().unwrap()
}

fn sorted_rows(raw: Vec<(u64, Vec<u8>)>) -> Vec<(u64, Vec<u8>)> {
    let mut rows = raw;
    rows.sort_by_key(|(k, _)| *k);
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn runs_roundtrip_through_memory(
        raw in proptest::collection::vec(
            (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..64)),
            0..300,
        ),
        block_bytes in 32usize..4096,
    ) {
        let rows = sorted_rows(raw);
        let be = MemoryBackend::new();
        let meta = write_rows(&be, &rows, block_bytes);
        prop_assert_eq!(meta.rows, rows.len() as u64);
        prop_assert_eq!(
            meta.blocks.iter().map(|b| u64::from(b.rows)).sum::<u64>(),
            rows.len() as u64
        );
        let reader: RunReader<u64> = RunReader::open(&be, &meta, IoStats::new()).unwrap();
        let back: Vec<(u64, Vec<u8>)> =
            reader.map(|r| r.map(|row| (row.key, row.payload.to_vec()))).collect::<Result<_, _>>().unwrap();
        prop_assert_eq!(back, rows);
    }

    #[test]
    fn runs_roundtrip_through_files(
        raw in proptest::collection::vec(
            (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..32)),
            0..120,
        ),
        block_bytes in 32usize..1024,
    ) {
        let rows = sorted_rows(raw);
        let be = FileBackend::temp().unwrap();
        let meta = write_rows(&be, &rows, block_bytes);
        let reader: RunReader<u64> = RunReader::open(&be, &meta, IoStats::new()).unwrap();
        let back: Vec<(u64, Vec<u8>)> =
            reader.map(|r| r.map(|row| (row.key, row.payload.to_vec()))).collect::<Result<_, _>>().unwrap();
        prop_assert_eq!(back, rows);
    }

    #[test]
    fn skip_rows_equals_sequential_read(
        raw in proptest::collection::vec(
            (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..16)),
            1..300,
        ),
        block_bytes in 32usize..512,
        skip_fraction in 0.0f64..1.0,
    ) {
        let rows = sorted_rows(raw);
        let be = MemoryBackend::new();
        let meta = write_rows(&be, &rows, block_bytes);
        let skip = ((rows.len() as f64) * skip_fraction) as u64;

        let mut skipping: RunReader<u64> = RunReader::open(&be, &meta, IoStats::new()).unwrap();
        skipping.skip_rows(skip).unwrap();
        let tail: Vec<u64> =
            skipping.map(|r| r.map(|row| row.key)).collect::<Result<_, _>>().unwrap();

        let expected: Vec<u64> = rows.iter().skip(skip as usize).map(|(k, _)| *k).collect();
        prop_assert_eq!(tail, expected);
    }

    #[test]
    fn block_metadata_is_faithful(
        raw in proptest::collection::vec((any::<u64>(), Just(Vec::new())), 1..500),
        block_bytes in 32usize..256,
    ) {
        let rows = sorted_rows(raw);
        let be = MemoryBackend::new();
        let meta = write_rows(&be, &rows, block_bytes);
        // Block last-keys are non-decreasing and the final one equals the
        // run's last key (the §4.1 fast-skip machinery depends on both).
        let boundaries: Vec<u64> = meta.blocks.iter().map(|b| b.last_key).collect();
        prop_assert!(boundaries.windows(2).all(|w| w[0] <= w[1]));
        prop_assert_eq!(boundaries.last().copied(), meta.last_key);
        prop_assert_eq!(meta.first_key, rows.first().map(|(k, _)| *k));
    }
}
