//! Failure and cancellation paths through the overlapped-I/O threads.
//!
//! Every test runs its body on a watchdog thread with a hard timeout: the
//! failure mode these paths guard against is a *hang* (a pipeline or
//! prefetch thread blocked forever on a channel), which a plain assert
//! cannot catch.

use std::sync::mpsc;
use std::time::Duration;

use histok_storage::{
    FaultBackend, FaultPlan, IoStats, MemoryBackend, PrefetchingRunReader, RunReader, RunWriter,
    StorageBackend, ThrottleModel, ThrottledBackend,
};
use histok_types::{Error, Result, Row, SortOrder};

const TEST_TIMEOUT: Duration = Duration::from_secs(30);

/// Runs `body` on its own thread and panics if it does not complete in
/// time — converting a deadlocked I/O thread into a test failure.
fn with_watchdog<F: FnOnce() + Send + 'static>(body: F) {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        body();
        let _ = tx.send(());
    });
    match rx.recv_timeout(TEST_TIMEOUT) {
        Ok(()) => handle.join().unwrap(),
        Err(_) => panic!("test body deadlocked (exceeded {TEST_TIMEOUT:?})"),
    }
}

fn write_run<B: StorageBackend>(
    be: &B,
    name: &str,
    n: u64,
    block_bytes: usize,
    pipelined: bool,
) -> histok_storage::RunMeta<u64> {
    let mut w = RunWriter::with_options(
        be,
        name,
        SortOrder::Ascending,
        IoStats::new(),
        block_bytes,
        pipelined,
    )
    .unwrap();
    for k in 0..n {
        w.append(&Row::new(k, vec![k as u8; 16])).unwrap();
    }
    w.finish().unwrap()
}

#[test]
fn backend_write_error_fails_pipelined_finish() {
    with_watchdog(|| {
        let be = FaultBackend::new(
            MemoryBackend::new(),
            FaultPlan { fail_write_after_bytes: Some(256), ..FaultPlan::none() },
        );
        let mut w: RunWriter<u64> =
            RunWriter::with_options(&be, "boom", SortOrder::Ascending, IoStats::new(), 64, true)
                .unwrap();
        // The writer thread trips the fault on an early block; the error
        // must surface on a later append or, at the latest, on finish —
        // never as a panic or a hang.
        let mut failed = false;
        for k in 0..5_000u64 {
            if w.append(&Row::new(k, vec![0u8; 16])).is_err() {
                failed = true;
                break;
            }
        }
        if !failed {
            assert!(w.finish().is_err(), "injected write fault was swallowed");
        }
        assert!(be.fault_fired());
    });
}

#[test]
fn create_error_fails_pipelined_construction() {
    with_watchdog(|| {
        let be = FaultBackend::new(
            MemoryBackend::new(),
            FaultPlan { fail_create: true, ..FaultPlan::none() },
        );
        let r: Result<RunWriter<u64>> =
            RunWriter::with_options(&be, "x", SortOrder::Ascending, IoStats::new(), 64, true);
        assert!(r.is_err());
    });
}

#[test]
fn crc_corruption_surfaces_as_err_through_prefetch_and_fuses() {
    with_watchdog(|| {
        let be = FaultBackend::new(
            MemoryBackend::new(),
            // Past the file header (8) + first block, inside a later
            // payload: some rows decode fine before the error arrives.
            FaultPlan { corrupt_write_byte_at: Some(400), ..FaultPlan::none() },
        );
        let meta = write_run(&be, "corrupt", 500, 64, false);
        assert!(be.fault_fired());
        let reader = RunReader::open(&be, &meta, IoStats::new()).unwrap();
        let mut pf = PrefetchingRunReader::spawn(reader, 2);
        let mut good = 0u64;
        let mut err: Option<Error> = None;
        for item in pf.by_ref() {
            match item {
                Ok(row) => {
                    assert_eq!(row.key, good);
                    good += 1;
                }
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(err, Some(Error::Corrupt(_))), "got {err:?}");
        assert!(good > 0, "corruption in a later block should leave earlier rows readable");
        // Fused: after the error the iterator ends, it does not wrap around
        // or hang on a dead channel.
        assert!(pf.next().is_none());
    });
}

#[test]
fn read_error_mid_run_surfaces_through_prefetch() {
    with_watchdog(|| {
        let inner = MemoryBackend::new();
        let meta = write_run(&inner, "readerr", 1_000, 64, true);
        let be = FaultBackend::new(
            inner,
            FaultPlan { fail_read_after_bytes: Some(512), ..FaultPlan::none() },
        );
        let reader = RunReader::open(&be, &meta, IoStats::new()).unwrap();
        let results: Vec<Result<Row<u64>>> = PrefetchingRunReader::spawn(reader, 3).collect();
        assert!(results.last().unwrap().is_err());
        assert!(results.iter().take(results.len() - 1).all(Result::is_ok));
    });
}

#[test]
fn dropping_prefetch_readers_mid_stream_joins_all_threads() {
    with_watchdog(|| {
        // A sleeping throttle keeps the prefetch threads genuinely busy in
        // I/O when the consumer walks away after one row.
        let model = ThrottleModel {
            per_op: Duration::from_micros(200),
            per_byte: Duration::ZERO,
            sleep: true,
        };
        let be = ThrottledBackend::new(MemoryBackend::new(), model);
        let mut readers = Vec::new();
        for i in 0..4 {
            let meta = write_run(&be, &format!("r{i}"), 2_000, 32, false);
            readers.push(PrefetchingRunReader::spawn(
                RunReader::open(&be, &meta, IoStats::new()).unwrap(),
                1,
            ));
        }
        for pf in &mut readers {
            let first = pf.next().unwrap().unwrap();
            assert_eq!(first.key, 0);
        }
        // Drop all four mid-run; each Drop must unblock and join its
        // thread. The watchdog converts any leak-induced hang into a fail.
        drop(readers);
    });
}

#[test]
fn pipelined_spill_under_sleeping_throttle_does_not_deadlock() {
    with_watchdog(|| {
        // Storage slower than compute: the bounded channel exerts
        // backpressure on every block. The run must still complete and be
        // byte-identical to the sync spill of the same rows.
        let model = ThrottleModel {
            per_op: Duration::from_micros(100),
            per_byte: Duration::ZERO,
            sleep: true,
        };
        let be = ThrottledBackend::new(MemoryBackend::new(), model);
        let piped = write_run(&be, "bp-piped", 1_500, 64, true);
        let sync = write_run(&be, "bp-sync", 1_500, 64, false);
        assert_eq!(piped.bytes, sync.bytes);
        assert_eq!(piped.blocks, sync.blocks);
        let a: Vec<u64> =
            RunReader::open(&be, &piped, IoStats::new()).unwrap().map(|r| r.unwrap().key).collect();
        assert_eq!(a, (0..1_500).collect::<Vec<_>>());
    });
}

#[test]
fn io_wait_and_overlap_are_both_recorded_under_throttle() {
    with_watchdog(|| {
        let model = ThrottleModel {
            per_op: Duration::from_micros(100),
            per_byte: Duration::ZERO,
            sleep: true,
        };
        let be = ThrottledBackend::new(MemoryBackend::new(), model);
        let stats = IoStats::new();
        let mut w: RunWriter<u64> =
            RunWriter::with_options(&be, "acct", SortOrder::Ascending, stats.clone(), 64, true)
                .unwrap();
        for k in 0..400u64 {
            w.append(&Row::new(k, vec![0u8; 16])).unwrap();
            // Compute work between appends: the writer thread drains its
            // queue while this thread is busy, so the throttle sleeps are
            // genuinely hidden and settle as overlapped time.
            std::thread::sleep(Duration::from_micros(60));
        }
        let meta = w.finish().unwrap();
        let snap = stats.snapshot();
        // The writer thread slept in the throttle behind the producer's
        // compute: that latency is overlapped. The compute thread still
        // waited somewhere (at least the finish drain), and the two
        // counters never book the same nanoseconds twice.
        assert!(snap.overlapped_io_ns > 0);
        assert!(snap.io_wait_ns > 0);

        // Prefetched reads book the same way: storage latency lands on the
        // background side (overlapped) while the consumer does per-row
        // compute; the consumer only records its blocked waits.
        let before = stats.snapshot();
        let pf =
            PrefetchingRunReader::spawn(RunReader::open(&be, &meta, stats.clone()).unwrap(), 2);
        let mut read_rows = 0u64;
        for row in pf {
            row.unwrap();
            read_rows += 1;
            std::thread::sleep(Duration::from_micros(30));
        }
        assert_eq!(read_rows, 400);
        let read = stats.snapshot().since(&before);
        assert!(read.overlapped_io_ns > 0);
    });
}
