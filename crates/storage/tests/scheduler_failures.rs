//! Failure and cancellation paths through the shared I/O worker pool.
//!
//! The scheduled counterpart of `overlap_failures.rs`: every spill and
//! prefetch here runs its background work as jobs on an [`IoScheduler`]
//! instead of a dedicated thread, and every test body runs under a
//! watchdog with a hard timeout — the failure mode these paths guard
//! against is a *hang* (a job that never completes, a consumer blocked on
//! a cancelled source, a worker pool wedged by a gate), which a plain
//! assert cannot catch.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

use histok_storage::{
    FaultBackend, FaultPlan, IoPriority, IoScheduler, IoStats, MemoryBackend, PrefetchingRunReader,
    RunReader, RunWriter, StorageBackend, ThrottleModel, ThrottledBackend,
};
use histok_types::{Error, Result, Row, SortOrder};

const TEST_TIMEOUT: Duration = Duration::from_secs(30);

/// Runs `body` on its own thread and panics if it does not complete in
/// time — converting a deadlocked job or consumer into a test failure.
fn with_watchdog<F: FnOnce() + Send + 'static>(body: F) {
    let (tx, rx) = mpsc::channel();
    let handle = std::thread::spawn(move || {
        body();
        let _ = tx.send(());
    });
    match rx.recv_timeout(TEST_TIMEOUT) {
        Ok(()) => handle.join().unwrap(),
        Err(_) => panic!("test body deadlocked (exceeded {TEST_TIMEOUT:?})"),
    }
}

/// Polls until every submitted job has completed: after a cancellation or
/// error the pool must drain, not hold abandoned jobs forever.
fn assert_no_leaked_jobs(sched: &IoScheduler) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let m = sched.metrics();
        if m.completed_total() == m.submitted_total() && m.queue_depth == 0 {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "leaked jobs: {} submitted, {} completed, {} queued",
            m.submitted_total(),
            m.completed_total(),
            m.queue_depth
        );
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn write_run_scheduled(
    be: &dyn StorageBackend,
    sched: &IoScheduler,
    name: &str,
    n: u64,
    block_bytes: usize,
) -> histok_storage::RunMeta<u64> {
    let mut w = RunWriter::with_io(
        be,
        name,
        SortOrder::Ascending,
        IoStats::new(),
        block_bytes,
        true,
        Some(sched.handle()),
    )
    .unwrap();
    for k in 0..n {
        w.append(&Row::new(k, vec![k as u8; 16])).unwrap();
    }
    w.finish().unwrap()
}

#[test]
fn scheduled_write_error_fails_finish_and_leaks_no_jobs() {
    with_watchdog(|| {
        let sched = IoScheduler::new(2);
        let be = FaultBackend::new(
            MemoryBackend::new(),
            FaultPlan { fail_write_after_bytes: Some(256), ..FaultPlan::none() },
        );
        let mut w: RunWriter<u64> = RunWriter::with_io(
            &be,
            "boom",
            SortOrder::Ascending,
            IoStats::new(),
            64,
            true,
            Some(sched.handle()),
        )
        .unwrap();
        // The pipeline job trips the fault on an early block; the error
        // must surface on a later append or, at the latest, on finish —
        // never as a panic or a hang.
        let mut failed = false;
        for k in 0..5_000u64 {
            if w.append(&Row::new(k, vec![0u8; 16])).is_err() {
                failed = true;
                break;
            }
        }
        if !failed {
            assert!(w.finish().is_err(), "injected write fault was swallowed");
        } else {
            drop(w);
        }
        assert!(be.fault_fired());
        assert_no_leaked_jobs(&sched);
    });
}

#[test]
fn scheduled_create_error_fails_construction() {
    with_watchdog(|| {
        let sched = IoScheduler::new(1);
        let be = FaultBackend::new(
            MemoryBackend::new(),
            FaultPlan { fail_create: true, ..FaultPlan::none() },
        );
        let r: Result<RunWriter<u64>> = RunWriter::with_io(
            &be,
            "x",
            SortOrder::Ascending,
            IoStats::new(),
            64,
            true,
            Some(sched.handle()),
        );
        assert!(r.is_err());
        assert_no_leaked_jobs(&sched);
    });
}

#[test]
fn crc_corruption_surfaces_through_scheduled_prefetch_and_fuses() {
    with_watchdog(|| {
        let sched = IoScheduler::new(2);
        let be = FaultBackend::new(
            MemoryBackend::new(),
            // Past the file header (8) + first block, inside a later
            // payload: some rows decode fine before the error arrives.
            FaultPlan { corrupt_write_byte_at: Some(400), ..FaultPlan::none() },
        );
        let meta = write_run_scheduled(&be, &sched, "corrupt", 500, 64);
        assert!(be.fault_fired());
        let reader = RunReader::open(&be, &meta, IoStats::new()).unwrap();
        let mut pf = PrefetchingRunReader::spawn_scheduled(reader, 2, sched.handle());
        let mut good = 0u64;
        let mut err: Option<Error> = None;
        for item in pf.by_ref() {
            match item {
                Ok(row) => {
                    assert_eq!(row.key, good);
                    good += 1;
                }
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        assert!(matches!(err, Some(Error::Corrupt(_))), "got {err:?}");
        assert!(good > 0, "corruption in a later block should leave earlier rows readable");
        // Fused: after the error the iterator ends; it does not resurrect
        // the decode job or hang waiting for one.
        assert!(pf.next().is_none());
        drop(pf);
        assert_no_leaked_jobs(&sched);
    });
}

#[test]
fn read_error_mid_run_surfaces_through_scheduled_prefetch() {
    with_watchdog(|| {
        let sched = IoScheduler::new(2);
        let inner = MemoryBackend::new();
        let meta = write_run_scheduled(&inner, &sched, "readerr", 1_000, 64);
        let be = FaultBackend::new(
            inner,
            FaultPlan { fail_read_after_bytes: Some(512), ..FaultPlan::none() },
        );
        let reader = RunReader::open(&be, &meta, IoStats::new()).unwrap();
        let results: Vec<Result<Row<u64>>> =
            PrefetchingRunReader::spawn_scheduled(reader, 3, sched.handle()).collect();
        assert!(results.last().unwrap().is_err());
        assert!(results.iter().take(results.len() - 1).all(Result::is_ok));
        assert_no_leaked_jobs(&sched);
    });
}

#[test]
fn dropping_scheduled_prefetchers_mid_stream_cancels_their_jobs() {
    with_watchdog(|| {
        // A sleeping throttle keeps the decode jobs genuinely busy in I/O
        // when the consumer walks away after one row.
        let sched = IoScheduler::new(2);
        let model = ThrottleModel {
            per_op: Duration::from_micros(200),
            per_byte: Duration::ZERO,
            sleep: true,
        };
        let be = ThrottledBackend::new(MemoryBackend::new(), model);
        let mut readers = Vec::new();
        for i in 0..4 {
            let meta = write_run_scheduled(&be, &sched, &format!("r{i}"), 2_000, 32);
            readers.push(PrefetchingRunReader::spawn_scheduled(
                RunReader::open(&be, &meta, IoStats::new()).unwrap(),
                1,
                sched.handle(),
            ));
        }
        for pf in &mut readers {
            let first = pf.next().unwrap().unwrap();
            assert_eq!(first.key, 0);
        }
        // Drop all four mid-run; each Drop marks its source cancelled and
        // the in-flight job must notice and terminate instead of decoding
        // the remaining ~2,000 rows or blocking on a full buffer forever.
        drop(readers);
        assert_no_leaked_jobs(&sched);
    });
}

#[test]
fn scheduled_spill_under_sleeping_throttle_matches_sync_bytes() {
    with_watchdog(|| {
        // Storage slower than compute: the bounded pipeline queue exerts
        // backpressure on every block. The run must still complete and be
        // byte-identical to the synchronous spill of the same rows.
        let sched = IoScheduler::new(1);
        let model = ThrottleModel {
            per_op: Duration::from_micros(100),
            per_byte: Duration::ZERO,
            sleep: true,
        };
        let be = ThrottledBackend::new(MemoryBackend::new(), model);
        let piped = write_run_scheduled(&be, &sched, "bp-piped", 1_500, 64);
        let mut sync: RunWriter<u64> = RunWriter::with_options(
            &be,
            "bp-sync",
            SortOrder::Ascending,
            IoStats::new(),
            64,
            false,
        )
        .unwrap();
        for k in 0..1_500u64 {
            sync.append(&Row::new(k, vec![k as u8; 16])).unwrap();
        }
        let sync = sync.finish().unwrap();
        assert_eq!(piped.bytes, sync.bytes);
        assert_eq!(piped.blocks, sync.blocks);
        let a: Vec<u64> =
            RunReader::open(&be, &piped, IoStats::new()).unwrap().map(|r| r.unwrap().key).collect();
        assert_eq!(a, (0..1_500).collect::<Vec<_>>());
        assert_no_leaked_jobs(&sched);
    });
}

#[test]
fn more_sources_than_workers_never_deadlocks() {
    with_watchdog(|| {
        // Eight prefetching sources share a one-worker pool: at most one
        // decode job runs at a time and the other seven wait queued. A
        // blocking job design would wedge here; the actor jobs must
        // interleave and every source must stream to completion.
        let sched = IoScheduler::new(1);
        let be = MemoryBackend::new();
        let mut readers = Vec::new();
        for i in 0..8 {
            let meta = write_run_scheduled(&be, &sched, &format!("s{i}"), 600, 64);
            readers.push(PrefetchingRunReader::spawn_scheduled(
                RunReader::open(&be, &meta, IoStats::new()).unwrap(),
                2,
                sched.handle(),
            ));
        }
        // Round-robin consumption keeps all eight sources hungry at once.
        let mut counts = vec![0u64; readers.len()];
        let mut live = readers.len();
        while live > 0 {
            live = 0;
            for (i, pf) in readers.iter_mut().enumerate() {
                if let Some(row) = pf.next() {
                    assert_eq!(row.unwrap().key, counts[i]);
                    counts[i] += 1;
                    live += 1;
                }
            }
        }
        assert!(counts.iter().all(|&c| c == 600));
        // Consumer-side blocking escalates queued decode jobs to merge
        // read-ahead priority; those completions are tagged by the class
        // they held at dispatch.
        let m = sched.metrics();
        assert!(m.submitted[IoPriority::Prefetch as usize] > 0);
        assert_no_leaked_jobs(&sched);
    });
}

#[test]
fn backend_gate_limits_in_flight_jobs_without_wedging_the_pool() {
    with_watchdog(|| {
        // A per-backend gate of one on a four-worker pool: jobs for this
        // backend run one at a time while the pool stays responsive, and
        // everything still completes.
        let sched = IoScheduler::with_backend_limit(4, 1);
        let model = ThrottleModel {
            per_op: Duration::from_micros(50),
            per_byte: Duration::ZERO,
            sleep: true,
        };
        let be: Arc<dyn StorageBackend> =
            Arc::new(ThrottledBackend::new(MemoryBackend::new(), model));
        let handle = sched.for_backend(&be);
        let mut w: RunWriter<u64> = RunWriter::with_io(
            be.as_ref(),
            "gated",
            SortOrder::Ascending,
            IoStats::new(),
            64,
            true,
            Some(handle.clone()),
        )
        .unwrap();
        for k in 0..1_000u64 {
            w.append(&Row::new(k, vec![k as u8; 16])).unwrap();
        }
        let meta = w.finish().unwrap();
        let keys: Vec<u64> = PrefetchingRunReader::spawn_scheduled(
            RunReader::open(be.as_ref(), &meta, IoStats::new()).unwrap(),
            2,
            handle,
        )
        .map(|r| r.unwrap().key)
        .collect();
        assert_eq!(keys, (0..1_000).collect::<Vec<_>>());
        assert_no_leaked_jobs(&sched);
    });
}

#[test]
fn pool_outlives_the_dropped_scheduler_while_sources_hold_handles() {
    with_watchdog(|| {
        // Drop the caller's scheduler clone while sources are mid-stream:
        // each source's handle keeps the pool alive, so their queued jobs
        // still run; the workers join only when the last reader drops.
        let model = ThrottleModel {
            per_op: Duration::from_micros(100),
            per_byte: Duration::ZERO,
            sleep: true,
        };
        let be = ThrottledBackend::new(MemoryBackend::new(), model);
        let sched = IoScheduler::new(1);
        let mut readers = Vec::new();
        for i in 0..4 {
            let meta = write_run_scheduled(&be, &sched, &format!("q{i}"), 1_000, 32);
            readers.push(PrefetchingRunReader::spawn_scheduled(
                RunReader::open(&be, &meta, IoStats::new()).unwrap(),
                1,
                sched.handle(),
            ));
        }
        for pf in &mut readers {
            assert_eq!(pf.next().unwrap().unwrap().key, 0);
        }
        drop(sched);
        // The sources must still stream to completion on the shared pool.
        for (i, pf) in readers.into_iter().enumerate() {
            let rest: Vec<u64> = pf.map(|r| r.unwrap().key).collect();
            assert_eq!(rest, (1..1_000).collect::<Vec<_>>(), "source {i} truncated");
        }
    });
}
