//! Edge cases of `RunReader::open_range` — the block-index seek that backs
//! the partitioned parallel merge: empty runs, single-block runs,
//! duplicate boundary keys spanning blocks, ranges past the run's key
//! span, skip accounting, and composition with prefetch and the offset
//! fast-skip path.

use std::sync::Arc;

use histok_storage::{
    IoStats, KeyRange, MemoryBackend, PrefetchingRunReader, RunCatalog, RunReader,
};
use histok_types::{Row, SortOrder};

/// Catalog with tiny blocks so multi-block runs appear at test sizes.
fn catalog(order: SortOrder) -> RunCatalog<u64> {
    RunCatalog::new(Arc::new(MemoryBackend::new()), "rg", order, IoStats::new())
        .with_block_bytes(128)
}

fn write_run(cat: &RunCatalog<u64>, keys: impl IntoIterator<Item = u64>) {
    let mut w = cat.start_run().unwrap();
    for k in keys {
        w.append(&Row::key_only(k)).unwrap();
    }
    cat.register(w.finish().unwrap()).unwrap();
}

fn read_range(cat: &RunCatalog<u64>, range: KeyRange<u64>) -> Vec<u64> {
    let meta = &cat.runs()[0];
    cat.open_range(meta, range).unwrap().map(|r| r.unwrap().key).collect()
}

#[test]
fn empty_run_opens_to_an_empty_range_stream() {
    // Empty runs never reach a catalog (register drops them), but the
    // reader must still handle a blocks-less meta defensively.
    let be = MemoryBackend::new();
    let cat: RunCatalog<u64> =
        RunCatalog::new(Arc::new(be.clone()), "e", SortOrder::Ascending, IoStats::new());
    let w = cat.start_run().unwrap();
    let meta = w.finish().unwrap();
    assert!(meta.blocks.is_empty());
    let keys: Vec<u64> =
        RunReader::open_range(&be, &meta, IoStats::new(), KeyRange::half_open(Some(5), Some(10)))
            .unwrap()
            .map(|r| r.unwrap().key)
            .collect();
    assert!(keys.is_empty());
}

#[test]
fn single_block_run_ranges() {
    let cat = catalog(SortOrder::Ascending);
    // Default-size block usage: 8 rows fit one 128-byte block? Make sure
    // by writing few rows.
    write_run(&cat, [10u64, 20, 30]);
    assert_eq!(cat.runs()[0].blocks.len(), 1);
    assert_eq!(read_range(&cat, KeyRange::half_open(None, None)), vec![10, 20, 30]);
    assert_eq!(read_range(&cat, KeyRange::half_open(Some(15), Some(30))), vec![20]);
    assert_eq!(read_range(&cat, KeyRange::half_open(Some(31), None)), Vec::<u64>::new());
    assert_eq!(read_range(&cat, KeyRange::half_open(None, Some(10))), Vec::<u64>::new());
}

#[test]
fn multi_block_range_skips_prefix_and_suffix_blocks() {
    let cat = catalog(SortOrder::Ascending);
    write_run(&cat, 0..200);
    let meta = cat.runs()[0].clone();
    assert!(meta.blocks.len() >= 4, "need several blocks, got {}", meta.blocks.len());
    let before = cat.stats().snapshot();
    let keys = read_range(&cat, KeyRange::half_open(Some(90), Some(110)));
    assert_eq!(keys, (90..110).collect::<Vec<_>>());
    let delta = cat.stats().snapshot().since(&before);
    // Prefix and suffix blocks must be booked as skipped, not read.
    assert!(delta.blocks_skipped >= 2, "no blocks skipped: {delta:?}");
    assert!(delta.bytes_skipped > 0);
}

#[test]
fn range_past_the_runs_max_key_reads_nothing_and_books_all_blocks() {
    let cat = catalog(SortOrder::Ascending);
    write_run(&cat, 0..200);
    let meta = cat.runs()[0].clone();
    let blocks = meta.blocks.len() as u64;
    let before = cat.stats().snapshot();
    let keys = read_range(&cat, KeyRange::half_open(Some(10_000), None));
    assert!(keys.is_empty());
    let delta = cat.stats().snapshot().since(&before);
    assert_eq!(delta.blocks_skipped, blocks, "every block should be skip-booked");
    assert_eq!(delta.rows_read, 0, "no payload should be decoded");
}

#[test]
fn range_wholly_before_the_run_reads_nothing() {
    let cat = catalog(SortOrder::Ascending);
    write_run(&cat, 100..300);
    let keys = read_range(&cat, KeyRange::half_open(None, Some(100)));
    assert!(keys.is_empty());
}

#[test]
fn duplicate_boundary_keys_spanning_blocks_stay_in_one_range() {
    // A long run of one key crosses several block boundaries, so several
    // consecutive blocks share the same `last_key`. Both the range that
    // owns the key and its neighbours must honor the half-open split.
    let cat = catalog(SortOrder::Ascending);
    let keys: Vec<u64> = (0..30).chain(std::iter::repeat_n(50, 60)).chain(100..130).collect();
    write_run(&cat, keys);
    let meta = cat.runs()[0].clone();
    let dup_boundaries = meta.blocks.iter().filter(|b| b.last_key == 50).count();
    assert!(dup_boundaries >= 2, "duplicates must span blocks, got {dup_boundaries}");
    // The range that owns 50 sees every copy exactly once.
    assert_eq!(read_range(&cat, KeyRange::half_open(Some(50), Some(51))).len(), 60);
    // The range below the duplicates sees none of them.
    assert_eq!(read_range(&cat, KeyRange::half_open(None, Some(50))), (0..30).collect::<Vec<_>>());
    // The range above the duplicates sees none of them either.
    assert_eq!(
        read_range(&cat, KeyRange::half_open(Some(51), None)),
        (100..130).collect::<Vec<_>>()
    );
    // An inclusive bound keeps the duplicates (the cutoff-clip shape).
    let clipped = read_range(&cat, KeyRange { lo: None, hi: Some(50), hi_inclusive: true });
    assert_eq!(clipped.len(), 30 + 60);
}

#[test]
fn descending_runs_seek_in_output_order() {
    let cat = catalog(SortOrder::Descending);
    write_run(&cat, (0..200).rev());
    let keys = read_range(&cat, KeyRange::half_open(Some(150), Some(100)));
    assert_eq!(keys, (101..=150).rev().collect::<Vec<_>>());
}

#[test]
fn prefetch_composes_with_a_range_scoped_reader() {
    let cat = catalog(SortOrder::Ascending);
    write_run(&cat, 0..500);
    let meta = cat.runs()[0].clone();
    let before = cat.stats().snapshot();
    let reader = cat.open_range(&meta, KeyRange::half_open(Some(200), Some(300))).unwrap();
    let keys: Vec<u64> = PrefetchingRunReader::spawn(reader, 2).map(|r| r.unwrap().key).collect();
    assert_eq!(keys, (200..300).collect::<Vec<_>>());
    // Prefetch must start at the seek point: the prefix blocks are
    // skip-booked, never read.
    let delta = cat.stats().snapshot().since(&before);
    assert!(delta.blocks_skipped >= 2, "prefetch re-read skipped blocks: {delta:?}");
}

#[test]
fn offset_fast_skip_within_a_range_decodes_rather_than_overskips() {
    // skip_rows on a range-scoped reader must count only in-range rows:
    // the whole-block shortcut (header row counts) would over-count
    // because headers include out-of-range rows.
    let cat = catalog(SortOrder::Ascending);
    write_run(&cat, 0..500);
    let meta = cat.runs()[0].clone();
    let mut reader = cat.open_range(&meta, KeyRange::half_open(Some(200), Some(400))).unwrap();
    reader.skip_rows(50).unwrap();
    let keys: Vec<u64> = reader.map(|r| r.unwrap().key).collect();
    assert_eq!(keys, (250..400).collect::<Vec<_>>());
}

#[test]
fn skip_past_the_ranges_end_errors_like_end_of_run() {
    let cat = catalog(SortOrder::Ascending);
    write_run(&cat, 0..500);
    let meta = cat.runs()[0].clone();
    let mut reader = cat.open_range(&meta, KeyRange::half_open(Some(200), Some(210))).unwrap();
    assert!(reader.skip_rows(100).is_err(), "range holds only 10 rows");
}

#[test]
fn unbounded_range_matches_plain_open() {
    let cat = catalog(SortOrder::Ascending);
    write_run(&cat, 0..300);
    let meta = cat.runs()[0].clone();
    let plain: Vec<u64> = cat.open(&meta).unwrap().map(|r| r.unwrap().key).collect();
    let ranged = read_range(&cat, KeyRange::all());
    assert_eq!(plain, ranged);
}
