//! A minimal typed-record layer: schemas, values and records.
//!
//! The paper's evaluation query projects *all* columns of a TPC-H
//! `lineitem` table and sorts on one of them (§5.1.1). This module gives
//! the examples and integration tests a faithful way to do exactly that:
//! build typed [`Record`]s against a [`Schema`], encode them into the row
//! payload that flows through runs and merges, and decode them back on
//! output — proving the operator is payload-agnostic end to end.

use histok_types::{Error, Result};

/// Column type of a [`Field`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataType {
    /// 64-bit signed integer.
    Int64,
    /// 64-bit float.
    Float64,
    /// UTF-8 string.
    Utf8,
    /// Days since the epoch.
    Date,
}

/// One column of a [`Schema`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Field {
    /// Column name.
    pub name: String,
    /// Column type.
    pub data_type: DataType,
}

impl Field {
    /// Creates a field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Field { name: name.into(), data_type }
    }
}

/// An ordered list of named, typed columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Creates a schema from fields; names must be unique.
    pub fn new(fields: Vec<Field>) -> Result<Self> {
        for (i, f) in fields.iter().enumerate() {
            if fields[..i].iter().any(|g| g.name == f.name) {
                return Err(Error::InvalidConfig(format!("duplicate column name {:?}", f.name)));
            }
        }
        Ok(Schema { fields })
    }

    /// The fields in declaration order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Index of the named column.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| Error::InvalidConfig(format!("no column named {name:?}")))
    }

    /// The TPC-H `lineitem` schema used throughout the paper's evaluation
    /// (sort column `l_orderkey` first, payload columns after).
    pub fn lineitem() -> Self {
        Schema::new(vec![
            Field::new("l_orderkey", DataType::Int64),
            Field::new("l_partkey", DataType::Int64),
            Field::new("l_suppkey", DataType::Int64),
            Field::new("l_linenumber", DataType::Int64),
            Field::new("l_quantity", DataType::Float64),
            Field::new("l_extendedprice", DataType::Float64),
            Field::new("l_discount", DataType::Float64),
            Field::new("l_tax", DataType::Float64),
            Field::new("l_returnflag", DataType::Utf8),
            Field::new("l_linestatus", DataType::Utf8),
            Field::new("l_shipdate", DataType::Date),
            Field::new("l_commitdate", DataType::Date),
            Field::new("l_receiptdate", DataType::Date),
            Field::new("l_shipinstruct", DataType::Utf8),
            Field::new("l_shipmode", DataType::Utf8),
            Field::new("l_comment", DataType::Utf8),
        ])
        .expect("static schema is valid")
    }
}

/// A dynamically typed column value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit signed integer.
    Int64(i64),
    /// 64-bit float.
    Float64(f64),
    /// UTF-8 string.
    Utf8(String),
    /// Days since the epoch.
    Date(u32),
}

impl Value {
    /// The value's type.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int64(_) => DataType::Int64,
            Value::Float64(_) => DataType::Float64,
            Value::Utf8(_) => DataType::Utf8,
            Value::Date(_) => DataType::Date,
        }
    }

    /// The integer payload, if this is an `Int64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int64(v) => Some(*v),
            _ => None,
        }
    }

    /// The float payload, if this is a `Float64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float64(v) => Some(*v),
            _ => None,
        }
    }

    /// The string payload, if this is a `Utf8`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Utf8(s) => Some(s),
            _ => None,
        }
    }

    fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            Value::Int64(v) => buf.extend_from_slice(&v.to_le_bytes()),
            Value::Float64(v) => buf.extend_from_slice(&v.to_le_bytes()),
            Value::Date(v) => buf.extend_from_slice(&v.to_le_bytes()),
            Value::Utf8(s) => {
                buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
                buf.extend_from_slice(s.as_bytes());
            }
        }
    }

    fn decode(data_type: DataType, buf: &mut &[u8]) -> Result<Value> {
        fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8]> {
            if buf.len() < n {
                return Err(Error::Corrupt("truncated record payload".into()));
            }
            let (head, tail) = buf.split_at(n);
            *buf = tail;
            Ok(head)
        }
        Ok(match data_type {
            DataType::Int64 => {
                Value::Int64(i64::from_le_bytes(take(buf, 8)?.try_into().expect("8 bytes")))
            }
            DataType::Float64 => {
                Value::Float64(f64::from_le_bytes(take(buf, 8)?.try_into().expect("8 bytes")))
            }
            DataType::Date => {
                Value::Date(u32::from_le_bytes(take(buf, 4)?.try_into().expect("4 bytes")))
            }
            DataType::Utf8 => {
                let len = u32::from_le_bytes(take(buf, 4)?.try_into().expect("4 bytes")) as usize;
                let bytes = take(buf, len)?;
                Value::Utf8(
                    std::str::from_utf8(bytes)
                        .map_err(|_| Error::Corrupt("invalid UTF-8 in record".into()))?
                        .to_string(),
                )
            }
        })
    }
}

/// One typed row against a [`Schema`].
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    values: Vec<Value>,
}

impl Record {
    /// Creates a record, checking arity and types against `schema`.
    pub fn new(schema: &Schema, values: Vec<Value>) -> Result<Self> {
        if values.len() != schema.fields().len() {
            return Err(Error::InvalidConfig(format!(
                "record has {} values, schema has {} fields",
                values.len(),
                schema.fields().len()
            )));
        }
        for (v, f) in values.iter().zip(schema.fields()) {
            if v.data_type() != f.data_type {
                return Err(Error::InvalidConfig(format!(
                    "column {:?}: expected {:?}, got {:?}",
                    f.name,
                    f.data_type,
                    v.data_type()
                )));
            }
        }
        Ok(Record { values })
    }

    /// The column values in schema order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The value of the named column.
    pub fn get<'a>(&'a self, schema: &Schema, name: &str) -> Result<&'a Value> {
        Ok(&self.values[schema.index_of(name)?])
    }

    /// Serializes the record (schema-less payload; decode requires the
    /// same schema).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(self.values.len() * 12);
        for v in &self.values {
            v.encode(&mut buf);
        }
        buf
    }

    /// Decodes a record produced by [`Record::encode`] under `schema`.
    pub fn decode(schema: &Schema, mut buf: &[u8]) -> Result<Record> {
        let mut values = Vec::with_capacity(schema.fields().len());
        for field in schema.fields() {
            values.push(Value::decode(field.data_type, &mut buf)?);
        }
        if !buf.is_empty() {
            return Err(Error::Corrupt("trailing bytes after record".into()));
        }
        Ok(Record { values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_schema() -> Schema {
        Schema::new(vec![
            Field::new("id", DataType::Int64),
            Field::new("score", DataType::Float64),
            Field::new("name", DataType::Utf8),
            Field::new("day", DataType::Date),
        ])
        .unwrap()
    }

    fn sample_record(schema: &Schema) -> Record {
        Record::new(
            schema,
            vec![
                Value::Int64(42),
                Value::Float64(0.75),
                Value::Utf8("hello world".into()),
                Value::Date(19_000),
            ],
        )
        .unwrap()
    }

    #[test]
    fn record_roundtrips() {
        let schema = sample_schema();
        let rec = sample_record(&schema);
        let buf = rec.encode();
        let back = Record::decode(&schema, &buf).unwrap();
        assert_eq!(back, rec);
        assert_eq!(back.get(&schema, "name").unwrap().as_str(), Some("hello world"));
        assert_eq!(back.get(&schema, "id").unwrap().as_i64(), Some(42));
    }

    #[test]
    fn schema_rejects_duplicates_and_unknown_columns() {
        assert!(Schema::new(vec![
            Field::new("a", DataType::Int64),
            Field::new("a", DataType::Utf8),
        ])
        .is_err());
        let schema = sample_schema();
        assert!(schema.index_of("nope").is_err());
        assert_eq!(schema.index_of("score").unwrap(), 1);
    }

    #[test]
    fn record_type_checking() {
        let schema = sample_schema();
        // Wrong arity.
        assert!(Record::new(&schema, vec![Value::Int64(1)]).is_err());
        // Wrong type in column 1.
        assert!(Record::new(
            &schema,
            vec![
                Value::Int64(1),
                Value::Utf8("not a float".into()),
                Value::Utf8("x".into()),
                Value::Date(1),
            ],
        )
        .is_err());
    }

    #[test]
    fn decode_rejects_corruption() {
        let schema = sample_schema();
        let rec = sample_record(&schema);
        let buf = rec.encode();
        assert!(Record::decode(&schema, &buf[..buf.len() - 1]).is_err());
        let mut extra = buf.clone();
        extra.push(0);
        assert!(Record::decode(&schema, &extra).is_err());
        // Invalid UTF-8 inside the string column.
        let mut bad = buf.clone();
        bad[20] = 0xFF; // inside "hello world"
        assert!(Record::decode(&schema, &bad).is_err());
    }

    #[test]
    fn lineitem_schema_shape() {
        let schema = Schema::lineitem();
        assert_eq!(schema.fields().len(), 16);
        assert_eq!(schema.index_of("l_orderkey").unwrap(), 0);
        assert_eq!(schema.fields()[15].name, "l_comment");
        assert_eq!(schema.fields()[4].data_type, DataType::Float64);
    }

    #[test]
    fn empty_string_values() {
        let schema = Schema::new(vec![Field::new("s", DataType::Utf8)]).unwrap();
        let rec = Record::new(&schema, vec![Value::Utf8(String::new())]).unwrap();
        let back = Record::decode(&schema, &rec.encode()).unwrap();
        assert_eq!(back.get(&schema, "s").unwrap().as_str(), Some(""));
    }
}
