//! Admission control for concurrent top-k queries: one global memory pool
//! carved into revocable per-query leases.
//!
//! The paper assumes a fixed per-operator allocation ("the default memory
//! allocation for a top-k operator is 1 GB", §5.1.2). A server running N
//! queries cannot give each the full allocation — [`ServerBudget`] owns the
//! process-wide pool and grants each query a [`BudgetLease`]:
//!
//! * **Small queries** (estimated in-memory footprint under the server's
//!   threshold) admit immediately — they never spill, so making a dashboard
//!   `LIMIT 10` wait behind a bulk export would be absurd.
//! * **Spilling queries** wait FIFO until the pool can cover at least their
//!   minimum lease, then get the pool's best clamp of their desired
//!   workspace.
//! * **Rebalancing**: when a lease is returned (query finished) or shrunk
//!   (run-generation → merge phase boundary), the freed bytes first admit
//!   queued queries in arrival order, then grow running leases toward
//!   their desired size — threaded live into each query's `MemoryBudget`
//!   through the shared [`BudgetHandle`], so a running sort simply buffers
//!   more rows before its next spill, no restart.
//! * **Fairness when oversubscribed**: a queued query at the head of the
//!   line may revoke the *surplus* (granted − minimum) of running leases.
//!   The revoked lease observes the smaller limit at its next budget check
//!   and drains at its next natural spill; the accounting credits the
//!   bytes immediately, accepting a bounded transient overcommit (the
//!   `MemoryBudget` tolerated-overage contract — see `sort/src/budget.rs`).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use histok_sort::BudgetHandle;

/// Fleet-wide admission counters; snapshot via [`ServerBudget::metrics`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionMetrics {
    /// Leases granted (small + spilling).
    pub grants: u64,
    /// Queries admitted without queueing (small-query fast path).
    pub admitted_immediately: u64,
    /// Queries admitted through the spilling-query queue (whether or not
    /// they actually had to wait).
    pub queued_queries: u64,
    /// Total nanoseconds spent waiting in the admission queue.
    pub queued_ns_total: u64,
    /// Lease resizes after the initial grant: grows from freed memory,
    /// phase-boundary shrinks, and fairness revocations.
    pub rebalances: u64,
    /// Bytes revoked from running leases to unblock queued queries.
    pub revoked_bytes: u64,
    /// High-water mark of concurrently outstanding leases.
    pub peak_leases: usize,
}

struct LeaseState {
    ticket: u64,
    granted: usize,
    desired: usize,
    min: usize,
    handle: BudgetHandle,
}

struct PoolState {
    /// Unleased bytes. Can transiently run "hot" after a revocation: the
    /// revoked query's usage drains to its new limit at its next spill.
    available: usize,
    /// FIFO arrival order of waiting spilling queries (tickets).
    queue: VecDeque<u64>,
    /// Outstanding leases, in grant order.
    leases: Vec<LeaseState>,
    next_ticket: u64,
    metrics: AdmissionMetrics,
}

/// The process-wide memory pool queries lease from.
pub struct ServerBudget {
    total: usize,
    state: Mutex<PoolState>,
    granted_cond: Condvar,
}

impl std::fmt::Debug for ServerBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerBudget").field("total", &self.total).finish()
    }
}

impl ServerBudget {
    /// A pool of `total` bytes.
    pub fn new(total: usize) -> Self {
        ServerBudget {
            total,
            state: Mutex::new(PoolState {
                available: total,
                queue: VecDeque::new(),
                leases: Vec::new(),
                next_ticket: 0,
                metrics: AdmissionMetrics::default(),
            }),
            granted_cond: Condvar::new(),
        }
    }

    /// The pool size.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Bytes not currently leased out.
    pub fn available(&self) -> usize {
        lock_state(&self.state).available
    }

    /// Queries currently waiting for a lease.
    pub fn queue_len(&self) -> usize {
        lock_state(&self.state).queue.len()
    }

    /// Fleet-wide admission counters so far.
    pub fn metrics(&self) -> AdmissionMetrics {
        lock_state(&self.state).metrics
    }

    /// Immediate admission for a query whose working set is known small:
    /// takes up to `bytes` from the pool without queueing (granting the
    /// shortfall anyway — a bounded overcommit — if the pool is dry, so
    /// in-memory queries never wait behind spilling ones).
    pub fn admit_small(&self, bytes: usize) -> BudgetLease<'_> {
        let bytes = bytes.max(1);
        let mut state = lock_state(&self.state);
        let taken = bytes.min(state.available);
        state.available -= taken;
        let handle = BudgetHandle::new(bytes);
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        // `granted` records what was actually taken from the pool — the
        // drop path must return exactly that, not the overcommitted grant.
        state.leases.push(LeaseState {
            ticket,
            granted: taken,
            desired: bytes,
            min: 0,
            handle: handle.clone(),
        });
        state.metrics.grants += 1;
        state.metrics.admitted_immediately += 1;
        state.metrics.peak_leases = state.metrics.peak_leases.max(state.leases.len());
        BudgetLease { pool: self, ticket, handle, queued: Duration::ZERO }
    }

    /// Queued admission for a spilling query: blocks FIFO until this
    /// caller is at the head of the queue and at least `min` bytes are
    /// free (revoking surplus from running leases if that is what it
    /// takes), then grants `available.clamp(min, desired)`.
    pub fn admit(&self, desired: usize, min: usize) -> BudgetLease<'_> {
        let desired = desired.max(1);
        // A minimum above the whole pool could never be satisfied; clamp
        // so admission always makes progress.
        let min = min.clamp(1, self.total.max(1)).min(desired);
        let start = Instant::now();
        let mut state = lock_state(&self.state);
        let ticket = state.next_ticket;
        state.next_ticket += 1;
        state.queue.push_back(ticket);
        loop {
            if state.queue.front() == Some(&ticket) {
                if state.available < min {
                    let shortfall = min - state.available;
                    self.revoke_surplus(&mut state, shortfall);
                }
                if state.available >= min {
                    state.queue.pop_front();
                    break;
                }
            }
            state =
                self.granted_cond.wait(state).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        let granted = state.available.clamp(min, desired);
        state.available -= granted;
        let handle = BudgetHandle::new(granted);
        state.leases.push(LeaseState { ticket, granted, desired, min, handle: handle.clone() });
        let queued = start.elapsed();
        state.metrics.grants += 1;
        state.metrics.queued_queries += 1;
        state.metrics.queued_ns_total += queued.as_nanos() as u64;
        state.metrics.peak_leases = state.metrics.peak_leases.max(state.leases.len());
        // The head may have changed; let the next waiter re-check.
        self.granted_cond.notify_all();
        BudgetLease { pool: self, ticket, handle, queued }
    }

    /// Shrinks running leases toward their minimum, oldest first, until
    /// `needed` bytes are freed (or no surplus remains). Credited to
    /// `available` immediately; each revoked query drains to its new limit
    /// at its next budget check.
    fn revoke_surplus(&self, state: &mut PoolState, mut needed: usize) {
        for i in 0..state.leases.len() {
            if needed == 0 {
                break;
            }
            let lease = &mut state.leases[i];
            let surplus = lease.granted.saturating_sub(lease.min.max(1));
            if surplus == 0 {
                continue;
            }
            let take = surplus.min(needed);
            lease.granted -= take;
            lease.handle.set_limit(lease.granted);
            state.available += take;
            needed -= take;
            state.metrics.rebalances += 1;
            state.metrics.revoked_bytes += take as u64;
        }
    }

    /// Returns `keep_hint` of a lease's bytes to the pool (phase-boundary
    /// shrink) or all of them (drop), then redistributes: queued queries
    /// first, then grow running leases toward their desired size.
    fn release(&self, ticket: u64, keep: Option<usize>) {
        let mut state = lock_state(&self.state);
        let Some(idx) = state.leases.iter().position(|l| l.ticket == ticket) else {
            return;
        };
        match keep {
            Some(keep) => {
                let lease = &mut state.leases[idx];
                let freed = lease.granted.saturating_sub(keep);
                if freed == 0 {
                    return;
                }
                lease.granted -= freed;
                // The shrunk lease will not grow back past its new size on
                // its own; cap desired so top-ups respect the caller.
                lease.desired = lease.desired.min(lease.granted.max(keep));
                lease.handle.set_limit(lease.granted);
                state.available += freed;
                state.metrics.rebalances += 1;
            }
            None => {
                let lease = state.leases.swap_remove(idx);
                state.available += lease.granted;
            }
        }
        // Freed memory goes to the queue first (FIFO fairness) …
        if !state.queue.is_empty() {
            self.granted_cond.notify_all();
            return;
        }
        // … and only grows running leases when nobody is waiting.
        for i in 0..state.leases.len() {
            let available = state.available;
            if available == 0 {
                break;
            }
            let lease = &mut state.leases[i];
            let want = lease.desired.saturating_sub(lease.granted);
            if want == 0 {
                continue;
            }
            let grow = want.min(available);
            lease.granted += grow;
            lease.handle.set_limit(lease.granted);
            state.available -= grow;
            state.metrics.rebalances += 1;
        }
    }
}

fn lock_state<'a>(m: &'a Mutex<PoolState>) -> std::sync::MutexGuard<'a, PoolState> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// One query's slice of the [`ServerBudget`], returned to the pool on
/// drop. The [`BudgetHandle`] inside is the live wire: the admission
/// controller resizes it, and every `MemoryBudget` the query constructs
/// through `TopKConfig::budget_lease` reads its limit from it.
#[derive(Debug)]
pub struct BudgetLease<'a> {
    pool: &'a ServerBudget,
    ticket: u64,
    handle: BudgetHandle,
    queued: Duration,
}

impl BudgetLease<'_> {
    /// The resizable limit cell to thread into `TopKConfig::budget_lease`.
    pub fn handle(&self) -> &BudgetHandle {
        &self.handle
    }

    /// The current grant in bytes.
    pub fn granted(&self) -> usize {
        self.handle.limit()
    }

    /// How long admission queued this query (zero for the small-query
    /// fast path).
    pub fn queued(&self) -> Duration {
        self.queued
    }

    /// Phase-boundary release: shrink this lease to `keep` bytes (the
    /// merge-phase reserve), freeing the run-generation workspace for
    /// queued and running siblings while the query streams its output.
    pub fn downsize(&self, keep: usize) {
        self.pool.release(self.ticket, Some(keep));
    }
}

impl Drop for BudgetLease<'_> {
    fn drop(&mut self) {
        self.pool.release(self.ticket, None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn small_queries_admit_immediately_even_when_dry() {
        let pool = ServerBudget::new(100);
        let big = pool.admit(100, 50);
        assert_eq!(big.granted(), 100);
        assert_eq!(pool.available(), 0);
        let small = pool.admit_small(10);
        assert_eq!(small.granted(), 10, "small query admits on an empty pool");
        drop(small);
        drop(big);
        assert_eq!(pool.available(), 100, "overcommitted grant must not inflate the pool");
    }

    #[test]
    fn spilling_queries_wait_fifo_and_reuse_freed_bytes() {
        let pool = Arc::new(ServerBudget::new(100));
        let first = pool.admit(80, 80);
        assert_eq!(first.granted(), 80);
        let order = Arc::new(AtomicUsize::new(0));
        let waiters: Vec<_> = (0..2)
            .map(|i| {
                let pool = pool.clone();
                let order = order.clone();
                // Stagger enqueue so FIFO order is deterministic.
                while pool.queue_len() < i {
                    std::thread::yield_now();
                }
                std::thread::spawn(move || {
                    let lease = pool.admit(60, 40);
                    let rank = order.fetch_add(1, Ordering::SeqCst);
                    let granted = lease.granted();
                    drop(lease);
                    (rank, granted)
                })
            })
            .collect();
        while pool.queue_len() < 2 {
            std::thread::yield_now();
        }
        drop(first); // frees 80 → admits the head (60), then the next (40 via the first's release)
        let results: Vec<_> = waiters.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(results.len(), 2);
        for (_, granted) in &results {
            assert!((40..=60).contains(granted), "grant {granted} outside [min, desired]");
        }
        assert_eq!(pool.available(), 100);
        let m = pool.metrics();
        assert_eq!(m.queued_queries, 3, "first + both waiters took the queued path");
        assert!(m.queued_ns_total > 0);
    }

    #[test]
    fn finishing_query_grows_running_leases_toward_desired() {
        let pool = ServerBudget::new(100);
        let a = pool.admit(100, 20); // gets everything
        let b = pool.admit_small(1); // placeholder holding nothing extra
        assert_eq!(a.granted(), 100);
        let before = pool.metrics().rebalances;
        drop(b);
        // b held 1 byte; a was already at desired — no growth to do.
        assert_eq!(a.granted(), 100);
        drop(a);
        let c = pool.admit(60, 20);
        let d = pool.admit(60, 20);
        assert_eq!(c.granted(), 60);
        assert_eq!(d.granted(), 40, "second query is clamped to what remains");
        drop(c); // frees 60 with an empty queue → d grows to its desired 60
        assert_eq!(d.granted(), 60, "running lease absorbs freed memory");
        assert!(pool.metrics().rebalances > before);
    }

    #[test]
    fn downsize_frees_bytes_for_the_queue_and_caps_regrowth() {
        let pool = Arc::new(ServerBudget::new(100));
        // min == desired: no revocable surplus, so the waiter must block
        // until the phase-boundary downsize frees memory.
        let a = pool.admit(100, 100);
        assert_eq!(pool.available(), 0);
        let waiter = {
            let pool = pool.clone();
            std::thread::spawn(move || {
                let lease = pool.admit(50, 30);
                let granted = lease.granted();
                drop(lease);
                granted
            })
        };
        while pool.queue_len() < 1 {
            std::thread::yield_now();
        }
        a.downsize(40); // run-gen done: keep a merge reserve, free 60
        assert_eq!(a.granted(), 40);
        let granted = waiter.join().unwrap();
        assert!((30..=50).contains(&granted));
        // The waiter's release found an empty queue; `a` must not grow
        // back past its downsized size.
        assert_eq!(a.granted(), 40);
        drop(a);
        assert_eq!(pool.available(), 100);
    }

    #[test]
    fn head_of_queue_revokes_surplus_from_running_leases() {
        let pool = Arc::new(ServerBudget::new(100));
        let hog = pool.admit(100, 10); // min 10 → 90 bytes of surplus
        assert_eq!(hog.granted(), 100);
        let granted = {
            let pool = pool.clone();
            std::thread::spawn(move || {
                let lease = pool.admit(50, 50);
                let granted = lease.granted();
                drop(lease);
                granted
            })
            .join()
            .unwrap()
        };
        assert_eq!(granted, 50, "waiter is served by revoking the hog's surplus");
        let m = pool.metrics();
        assert!(m.revoked_bytes >= 50);
        // The waiter's release found an empty queue and grew the revoked
        // lease back toward its desired size.
        assert_eq!(hog.granted(), 100, "revoked lease regrows once the waiter finishes");
        drop(hog);
        assert_eq!(pool.available(), 100);
    }

    #[test]
    fn min_above_total_is_clamped_not_deadlocked() {
        let pool = ServerBudget::new(64);
        let lease = pool.admit(1 << 30, 1 << 20); // min far above the pool
        assert_eq!(lease.granted(), 64);
        drop(lease);
        assert_eq!(pool.available(), 64);
    }
}
