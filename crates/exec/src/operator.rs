//! The pull-based operator interface and the built-in operators.

use histok_core::{OperatorMetrics, RowStream, TopKOperator};
use histok_types::{Error, Result, Row, SortKey};

/// A volcano-style operator: `open`, then `next` until `None`, then
/// `close`.
pub trait Operator<K: SortKey>: Send {
    /// Prepares the operator (and its children) for execution.
    fn open(&mut self) -> Result<()> {
        Ok(())
    }

    /// Produces the next row, or `None` at end of stream.
    fn next(&mut self) -> Result<Option<Row<K>>>;

    /// Releases resources.
    fn close(&mut self) -> Result<()> {
        Ok(())
    }

    /// Operator name for plan displays.
    fn name(&self) -> &'static str;
}

/// Leaf operator producing rows from any iterator (a table scan, a
/// workload generator, a test vector).
pub struct ScanOp<K: SortKey> {
    source: Box<dyn Iterator<Item = Row<K>> + Send>,
    produced: u64,
}

impl<K: SortKey> ScanOp<K> {
    /// Wraps an iterator as a scan.
    pub fn new(source: impl Iterator<Item = Row<K>> + Send + 'static) -> Self {
        ScanOp { source: Box::new(source), produced: 0 }
    }

    /// Rows produced so far.
    pub fn produced(&self) -> u64 {
        self.produced
    }
}

impl<K: SortKey> Operator<K> for ScanOp<K> {
    fn next(&mut self) -> Result<Option<Row<K>>> {
        let row = self.source.next();
        if row.is_some() {
            self.produced += 1;
        }
        Ok(row)
    }

    fn name(&self) -> &'static str {
        "Scan"
    }
}

/// Boxed row predicate.
type Predicate<K> = Box<dyn FnMut(&Row<K>) -> bool + Send>;

/// A predicate filter on the sort key (the WHERE clause of the paper's
/// example queries).
pub struct FilterOp<K: SortKey> {
    child: Box<dyn Operator<K>>,
    predicate: Predicate<K>,
}

impl<K: SortKey> FilterOp<K> {
    /// Filters `child` by `predicate`.
    pub fn new(
        child: Box<dyn Operator<K>>,
        predicate: impl FnMut(&Row<K>) -> bool + Send + 'static,
    ) -> Self {
        FilterOp { child, predicate: Box::new(predicate) }
    }
}

impl<K: SortKey> Operator<K> for FilterOp<K> {
    fn open(&mut self) -> Result<()> {
        self.child.open()
    }

    fn next(&mut self) -> Result<Option<Row<K>>> {
        while let Some(row) = self.child.next()? {
            if (self.predicate)(&row) {
                return Ok(Some(row));
            }
        }
        Ok(None)
    }

    fn close(&mut self) -> Result<()> {
        self.child.close()
    }

    fn name(&self) -> &'static str {
        "Filter"
    }
}

/// A plain `LIMIT n` node (useful above a top-k when a consumer wants
/// fewer rows than the operator produced, e.g. a preview pane).
pub struct LimitOp<K: SortKey> {
    child: Box<dyn Operator<K>>,
    remaining: u64,
}

impl<K: SortKey> LimitOp<K> {
    /// Caps `child` at `limit` rows.
    pub fn new(child: Box<dyn Operator<K>>, limit: u64) -> Self {
        LimitOp { child, remaining: limit }
    }
}

impl<K: SortKey> Operator<K> for LimitOp<K> {
    fn open(&mut self) -> Result<()> {
        self.child.open()
    }

    fn next(&mut self) -> Result<Option<Row<K>>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.child.next()? {
            Some(row) => {
                self.remaining -= 1;
                Ok(Some(row))
            }
            None => {
                self.remaining = 0;
                Ok(None)
            }
        }
    }

    fn close(&mut self) -> Result<()> {
        self.child.close()
    }

    fn name(&self) -> &'static str {
        "Limit"
    }
}

/// The top-k operator node: a blocking operator that drains its child into
/// any [`TopKOperator`] on `open`, then streams the result.
pub struct TopKExec<K: SortKey> {
    child: Box<dyn Operator<K>>,
    topk: Box<dyn TopKOperator<K>>,
    output: Option<RowStream<K>>,
    metrics: Option<OperatorMetrics>,
}

impl<K: SortKey> TopKExec<K> {
    /// Plans `topk` over `child`.
    pub fn new(child: Box<dyn Operator<K>>, topk: Box<dyn TopKOperator<K>>) -> Self {
        TopKExec { child, topk, output: None, metrics: None }
    }

    /// The wrapped algorithm's metrics. Live until `close`; the snapshot
    /// cached at `close` afterwards. Final-merge reads happen while the
    /// output streams, so only the post-`close` view includes the full
    /// merge-phase I/O and timing.
    pub fn metrics(&self) -> OperatorMetrics {
        self.metrics.clone().unwrap_or_else(|| self.topk.metrics())
    }

    /// The wrapped algorithm's name.
    pub fn algorithm(&self) -> &'static str {
        self.topk.algorithm()
    }
}

impl<K: SortKey> Operator<K> for TopKExec<K> {
    fn open(&mut self) -> Result<()> {
        self.child.open()?;
        while let Some(row) = self.child.next()? {
            self.topk.push(row)?;
        }
        self.child.close()?;
        self.output = Some(self.topk.finish()?);
        Ok(())
    }

    fn next(&mut self) -> Result<Option<Row<K>>> {
        let stream = self
            .output
            .as_mut()
            .ok_or_else(|| Error::InvalidConfig("TopKExec::next before open".into()))?;
        stream.next().transpose()
    }

    fn close(&mut self) -> Result<()> {
        // Drop the stream first: its drop guard books the merge-phase time
        // into the operator before the snapshot below.
        self.output = None;
        self.metrics = Some(self.topk.metrics());
        Ok(())
    }

    fn name(&self) -> &'static str {
        "TopK"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histok_core::{HistogramTopK, TopKConfig};
    use histok_storage::MemoryBackend;
    use histok_types::SortSpec;

    fn scan_of(keys: Vec<u64>) -> Box<dyn Operator<u64>> {
        Box::new(ScanOp::new(keys.into_iter().map(Row::key_only)))
    }

    #[test]
    fn scan_produces_all_rows() {
        let mut scan = ScanOp::new((0..5u64).map(Row::key_only));
        scan.open().unwrap();
        let mut got = Vec::new();
        while let Some(row) = scan.next().unwrap() {
            got.push(row.key);
        }
        assert_eq!(got, vec![0, 1, 2, 3, 4]);
        assert_eq!(scan.produced(), 5);
        scan.close().unwrap();
    }

    #[test]
    fn filter_applies_predicate() {
        let mut f = FilterOp::new(scan_of((0..10).collect()), |row| row.key % 2 == 0);
        f.open().unwrap();
        let mut got = Vec::new();
        while let Some(row) = f.next().unwrap() {
            got.push(row.key);
        }
        assert_eq!(got, vec![0, 2, 4, 6, 8]);
    }

    #[test]
    fn limit_caps_the_stream() {
        let mut l = LimitOp::new(scan_of((0..10).collect()), 3);
        l.open().unwrap();
        let mut got = Vec::new();
        while let Some(row) = l.next().unwrap() {
            got.push(row.key);
        }
        assert_eq!(got, vec![0, 1, 2]);
        // Fused after exhaustion.
        assert!(l.next().unwrap().is_none());
        l.close().unwrap();
    }

    #[test]
    fn limit_larger_than_input() {
        let mut l = LimitOp::new(scan_of(vec![1, 2]), 10);
        l.open().unwrap();
        let mut n = 0;
        while l.next().unwrap().is_some() {
            n += 1;
        }
        assert_eq!(n, 2);
    }

    #[test]
    fn topk_exec_runs_the_operator() {
        let topk = HistogramTopK::new(
            SortSpec::ascending(3),
            TopKConfig::builder().memory_budget(1 << 20).build().unwrap(),
            MemoryBackend::new(),
        )
        .unwrap();
        let mut node = TopKExec::new(scan_of(vec![9, 2, 7, 4, 1]), Box::new(topk));
        assert!(node.next().is_err(), "next before open must fail");
        node.open().unwrap();
        let mut got = Vec::new();
        while let Some(row) = node.next().unwrap() {
            got.push(row.key);
        }
        assert_eq!(got, vec![1, 2, 4]);
        assert_eq!(node.metrics().rows_in, 5);
        assert_eq!(node.algorithm(), "histogram-topk");
        node.close().unwrap();
    }
}
