//! `TopKServer`: N concurrent top-k queries over one memory pool and one
//! I/O pool.
//!
//! Every optimization below this layer makes *one* query fast; the
//! "millions of users" story needs many simultaneous queries that do not
//! trample each other. The server owns the two process-wide resources:
//!
//! * **One [`IoScheduler`]** shared by every admitted query, so the fleet's
//!   background I/O threads stay at `io_threads` instead of `4 × N` (the
//!   scheduler's priority classes and per-backend gates, built in
//!   DESIGN.md §9, finally arbitrate *across* queries here).
//! * **One [`ServerBudget`]** carved into per-query [`BudgetLease`]s by the
//!   admission controller (see `admission.rs`): small in-memory queries
//!   admit immediately, spilling queries queue FIFO, and leases rebalance
//!   live at query finish and at the run-generation → merge phase
//!   boundary.
//!
//! [`BudgetLease`]: crate::admission::BudgetLease

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use histok_storage::{IoScheduler, StorageBackend};
use histok_types::{Result, SortKey};

use crate::admission::{AdmissionMetrics, ServerBudget};
use crate::query::{Algorithm, Query, QueryResult};

/// Tunables for [`TopKServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The global memory pool all queries lease from (the fleet-wide
    /// analogue of the paper's per-operator 1 GB allocation, §5.1.2).
    pub total_memory: usize,
    /// Background-I/O worker threads for the whole fleet. `0` disables the
    /// shared pool (every query falls back to its own config's behaviour —
    /// only for differential testing).
    pub io_threads: usize,
    /// The smallest workspace a spilling query is admitted with; also the
    /// merge-phase reserve a lease shrinks to after run generation.
    pub min_lease: usize,
    /// Estimated in-memory footprint at or below which a query skips the
    /// admission queue entirely.
    pub small_query_bytes: usize,
    /// Assumed bytes per retained row when estimating whether a query fits
    /// in memory (row struct + payload + bookkeeping).
    pub row_bytes_hint: usize,
    /// Assumed bytes per retained *group* for dedup/aggregate queries:
    /// in-sort folding keeps one fixed-width accumulator per distinct key
    /// instead of an arbitrary payload, so folded queries sit lighter in
    /// memory than the general hint suggests (DESIGN.md §14).
    pub folded_row_bytes_hint: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            total_memory: 64 * 1024 * 1024,
            io_threads: 4,
            min_lease: 1024 * 1024,
            small_query_bytes: 256 * 1024,
            row_bytes_hint: 64,
            folded_row_bytes_hint: 32,
        }
    }
}

/// Fleet-wide execution counters; snapshot via
/// [`TopKServer::fleet_metrics`].
#[derive(Debug, Clone, Copy, Default)]
pub struct FleetMetrics {
    /// Queries completed (successfully or not).
    pub queries: u64,
    /// High-water mark of queries executing at once.
    pub peak_concurrent: usize,
    /// Aggregate bytes the fleet spilled to storage.
    pub spilled_bytes: u64,
    /// Aggregate rows returned to clients.
    pub rows_out: u64,
    /// Admission-controller counters (grants, rebalances, queue waits).
    pub admission: AdmissionMetrics,
}

/// A shared execution layer: admits concurrent [`Query`]s against one
/// global memory budget and one background-I/O pool.
///
/// `execute` is `&self` and thread-safe — call it from as many threads as
/// you have clients.
#[derive(Debug)]
pub struct TopKServer {
    config: ServerConfig,
    scheduler: Option<IoScheduler>,
    budget: ServerBudget,
    running: AtomicUsize,
    peak_running: AtomicUsize,
    queries: AtomicU64,
    spilled_bytes: AtomicU64,
    rows_out: AtomicU64,
}

impl TopKServer {
    /// Builds a server owning `config.total_memory` bytes of lease pool
    /// and (unless `io_threads == 0`) one shared I/O worker pool.
    pub fn new(config: ServerConfig) -> Self {
        let scheduler = (config.io_threads > 0).then(|| IoScheduler::new(config.io_threads));
        let budget = ServerBudget::new(config.total_memory);
        TopKServer {
            config,
            scheduler,
            budget,
            running: AtomicUsize::new(0),
            peak_running: AtomicUsize::new(0),
            queries: AtomicU64::new(0),
            spilled_bytes: AtomicU64::new(0),
            rows_out: AtomicU64::new(0),
        }
    }

    /// The shared background-I/O pool (None when `io_threads == 0`).
    pub fn scheduler(&self) -> Option<&IoScheduler> {
        self.scheduler.as_ref()
    }

    /// The global lease pool.
    pub fn budget(&self) -> &ServerBudget {
        &self.budget
    }

    /// Fleet counters so far.
    pub fn fleet_metrics(&self) -> FleetMetrics {
        FleetMetrics {
            queries: self.queries.load(Ordering::Relaxed),
            peak_concurrent: self.peak_running.load(Ordering::Relaxed),
            spilled_bytes: self.spilled_bytes.load(Ordering::Relaxed),
            rows_out: self.rows_out.load(Ordering::Relaxed),
            admission: self.budget.metrics(),
        }
    }

    /// Estimated bytes the query's retained top-k occupies in memory.
    /// Folded (dedup/aggregate) queries retain one accumulator per
    /// distinct group, priced at the smaller
    /// [`ServerConfig::folded_row_bytes_hint`].
    fn estimated_footprint<K: SortKey>(&self, query: &Query<K>) -> usize {
        let retained = query.spec().retained().max(1);
        let hint = if query.config_ref().fold_op().is_some() {
            self.config.folded_row_bytes_hint
        } else {
            self.config.row_bytes_hint
        };
        (retained as usize).saturating_mul(hint.max(1))
    }

    /// Admits and executes one query, blocking until its lease is granted
    /// and the result is materialized.
    ///
    /// Admission policy: a query whose estimated retained footprint fits
    /// [`ServerConfig::small_query_bytes`] — or that cannot spill at all —
    /// is granted immediately; anything larger queues FIFO for a lease
    /// between [`ServerConfig::min_lease`] and its configured
    /// `memory_budget`. After run generation completes (the `open` phase
    /// boundary), the lease shrinks back to the merge reserve so queued
    /// siblings start sooner.
    pub fn execute<K: SortKey>(
        &self,
        mut query: Query<K>,
        backend: Arc<dyn StorageBackend>,
    ) -> Result<QueryResult<K>> {
        let est = self.estimated_footprint(&query);
        let desired = query.config_ref().memory_budget;
        let in_memory_only = matches!(query.algorithm_kind(), Algorithm::InMemory);
        let lease = if in_memory_only || est <= self.config.small_query_bytes {
            self.budget.admit_small(est.min(desired.max(1)))
        } else {
            self.budget.admit(desired, self.config.min_lease)
        };
        let queued = lease.queued();

        {
            let config = query.config_mut();
            if let Some(scheduler) = &self.scheduler {
                config.io_scheduler_handle = Some(scheduler.clone());
                // The shared pool only bounds fleet threads if no query
                // falls back to legacy thread-per-source mode.
                if config.io_threads == 0 {
                    config.io_threads = self.config.io_threads;
                }
            }
            config.budget_lease = Some(lease.handle().clone());
        }

        let running = self.running.fetch_add(1, Ordering::SeqCst) + 1;
        self.peak_running.fetch_max(running, Ordering::SeqCst);
        let merge_reserve = self.config.min_lease.min(lease.granted());
        let result = query.execute_with_phase_hook(backend, |_metrics| {
            // Run generation is done and the workspace flushed; keep only
            // a merge reserve and hand the rest back to the pool.
            lease.downsize(merge_reserve);
        });
        self.running.fetch_sub(1, Ordering::SeqCst);
        drop(lease);

        self.queries.fetch_add(1, Ordering::Relaxed);
        let mut result = result?;
        result.queued = queued;
        result.metrics.queued_ns = queued.as_nanos() as u64;
        self.spilled_bytes.fetch_add(result.metrics.io.bytes_written, Ordering::Relaxed);
        self.rows_out.fetch_add(result.rows.len() as u64, Ordering::Relaxed);
        Ok(result)
    }
}

/// A client's connection to the server: one shared storage backend, many
/// queries. Sessions are cheap; open one per client thread.
pub struct Session<'a> {
    server: &'a TopKServer,
    backend: Arc<dyn StorageBackend>,
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session").finish_non_exhaustive()
    }
}

impl TopKServer {
    /// Opens a session executing queries against `backend`.
    pub fn session(&self, backend: Arc<dyn StorageBackend>) -> Session<'_> {
        Session { server: self, backend }
    }
}

impl Session<'_> {
    /// Admits and executes one query through the owning server.
    pub fn execute<K: SortKey>(&self, query: Query<K>) -> Result<QueryResult<K>> {
        self.server.execute(query, self.backend.clone())
    }

    /// The server this session talks to.
    pub fn server(&self) -> &TopKServer {
        self.server
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histok_core::TopKConfig;
    use histok_storage::MemoryBackend;
    use histok_types::SortSpec;
    use histok_workload::Workload;

    fn small_server() -> TopKServer {
        TopKServer::new(ServerConfig {
            total_memory: 64 * 1024,
            io_threads: 2,
            min_lease: 4 * 1024,
            small_query_bytes: 2 * 1024,
            row_bytes_hint: 64,
            folded_row_bytes_hint: 32,
        })
    }

    fn query(rows: u64, k: u64, seed: u64, budget: usize) -> Query<histok_types::F64Key> {
        Query::scan(Workload::uniform(rows, seed).rows(), SortSpec::ascending(k))
            .config(TopKConfig::builder().memory_budget(budget).block_bytes(1024).build().unwrap())
    }

    #[test]
    fn server_results_match_standalone_execution() {
        let server = small_server();
        let backend: Arc<dyn StorageBackend> = Arc::new(MemoryBackend::new());
        for (rows, k) in [(3_000, 10u64), (20_000, 800)] {
            let standalone = query(rows, k, 42, 16 * 1024).execute(MemoryBackend::new()).unwrap();
            let served = server.execute(query(rows, k, 42, 16 * 1024), backend.clone()).unwrap();
            let a: Vec<f64> = standalone.rows.iter().map(|r| r.key.get()).collect();
            let b: Vec<f64> = served.rows.iter().map(|r| r.key.get()).collect();
            assert_eq!(a, b, "rows={rows} k={k}");
        }
        let fleet = server.fleet_metrics();
        assert_eq!(fleet.queries, 2);
        assert_eq!(fleet.admission.grants, 2);
        assert!(fleet.admission.admitted_immediately >= 1, "small k=10 query takes the fast path");
        assert!(fleet.spilled_bytes > 0, "the k=800 query under a 16 KiB lease must spill");
    }

    #[test]
    fn concurrent_queries_share_the_pool_and_all_finish() {
        let server = Arc::new(small_server());
        let backend: Arc<dyn StorageBackend> = Arc::new(MemoryBackend::new());
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let server = server.clone();
                let backend = backend.clone();
                std::thread::spawn(move || {
                    let k = if i % 2 == 0 { 5 } else { 400 };
                    let q = query(10_000, k, 100 + i, 16 * 1024);
                    let expected =
                        Workload::uniform(10_000, 100 + i).expected_top_k(k as usize, true);
                    let result = server.execute(q, backend).unwrap();
                    let got: Vec<f64> = result.rows.iter().map(|r| r.key.get()).collect();
                    assert_eq!(got, expected, "query {i} diverged under concurrency");
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let fleet = server.fleet_metrics();
        assert_eq!(fleet.queries, 8);
        assert!(fleet.peak_concurrent >= 2, "queries must actually overlap");
        assert_eq!(server.budget().available(), server.budget().total(), "all leases returned");
        assert_eq!(server.budget().queue_len(), 0);
    }

    #[test]
    fn folded_queries_estimate_smaller_and_take_the_fast_path() {
        // retained = 48: plain estimate 48 × 64 = 3 KiB (queued), dedup
        // estimate 48 × 32 = 1.5 KiB (immediate small-query admission).
        let server = small_server();
        let backend: Arc<dyn StorageBackend> = Arc::new(MemoryBackend::new());
        server.execute(query(5_000, 48, 9, 16 * 1024), backend.clone()).unwrap();
        let fleet = server.fleet_metrics();
        assert_eq!(fleet.admission.queued_queries, 1, "plain query must queue for a lease");
        let dedup_cfg = TopKConfig::builder()
            .memory_budget(16 * 1024)
            .block_bytes(1024)
            .dedup(true)
            .build()
            .unwrap();
        let q = Query::scan(Workload::uniform(5_000, 9).rows(), SortSpec::ascending(48))
            .config(dedup_cfg);
        let result = server.execute(q, backend).unwrap();
        assert_eq!(result.rows.len(), 48);
        let fleet = server.fleet_metrics();
        assert_eq!(fleet.admission.queued_queries, 1, "folded query skips the queue");
        assert!(fleet.admission.admitted_immediately >= 1);
    }

    #[test]
    fn queued_time_reaches_result_and_metrics() {
        let server = small_server();
        let backend: Arc<dyn StorageBackend> = Arc::new(MemoryBackend::new());
        let result = server.execute(query(20_000, 800, 7, 16 * 1024), backend).unwrap();
        // Uncontended: admission still records a (possibly zero) wait and
        // the JSON-visible metric mirrors the result field.
        assert_eq!(result.queued.as_nanos() as u64, result.metrics.queued_ns);
        let fleet = server.fleet_metrics();
        assert_eq!(fleet.admission.queued_queries, 1);
        assert_eq!(fleet.rows_out, 800);
    }
}
