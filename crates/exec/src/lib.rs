//! # histok-exec
//!
//! A minimal pull-based query-operator framework, standing in for the F1
//! Query plumbing around the paper's operator. It exists so the examples
//! and experiments can run the paper's actual query shape —
//!
//! ```sql
//! SELECT L_ORDERKEY, ..., L_COMMENT   -- full projection
//! FROM LINEITEM
//! ORDER BY L_ORDERKEY
//! LIMIT K;
//! ```
//!
//! — through a recognizable plan: `Scan → Filter? → TopK → output`.
//!
//! Operators implement [`Operator`] (open / next / close); [`Query`] wires
//! them together and reports rows, metrics, and wall time.

#![deny(missing_docs)]

pub mod admission;
pub mod operator;
pub mod query;
pub mod schema;
pub mod server;

pub use admission::{AdmissionMetrics, BudgetLease, ServerBudget};
pub use operator::{FilterOp, LimitOp, Operator, ScanOp, TopKExec};
pub use query::{Algorithm, Query, QueryResult};
pub use schema::{DataType, Field, Record, Schema, Value};
pub use server::{FleetMetrics, ServerConfig, Session, TopKServer};
