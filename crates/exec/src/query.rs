//! A tiny fluent query builder over the operators.

use std::sync::Arc;
use std::time::{Duration, Instant};

use histok_core::{
    HistogramTopK, InMemoryTopK, OperatorMetrics, OptimizedExternalTopK, ParallelTopK, TopKConfig,
    TopKOperator, TraditionalExternalTopK,
};
use histok_storage::StorageBackend;
use histok_types::{Result, Row, SortKey, SortSpec};

use crate::operator::{FilterOp, Operator, ScanOp, TopKExec};

/// Which top-k algorithm a [`Query`] should plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// The paper's histogram-guided operator.
    #[default]
    Histogram,
    /// In-memory priority queue (assumes provisioned memory).
    InMemory,
    /// Traditional full external merge sort.
    Traditional,
    /// The [Graefe'08] optimized external merge sort.
    Optimized,
    /// The histogram operator parallelized over worker threads sharing one
    /// cutoff filter (§4.4).
    Parallel(
        /// Number of worker threads.
        usize,
    ),
}

/// Builder for a `Scan → Filter? → TopK` plan.
pub struct Query<K: SortKey> {
    source: Box<dyn Operator<K>>,
    spec: SortSpec,
    config: TopKConfig,
    algorithm: Algorithm,
    plan: Vec<String>,
}

/// The materialized result of a query run.
#[derive(Debug)]
pub struct QueryResult<K> {
    /// Output rows in the requested order.
    pub rows: Vec<Row<K>>,
    /// Metrics of the top-k operator.
    pub metrics: OperatorMetrics,
    /// Wall-clock execution time.
    pub elapsed: Duration,
    /// Time spent waiting for admission before execution started (always
    /// zero for standalone execution; set by `TopKServer` so callers can
    /// separate scheduling delay from execution time).
    pub queued: Duration,
    /// Name of the algorithm that ran.
    pub algorithm: &'static str,
}

impl<K: SortKey> Query<K> {
    /// Starts a plan scanning `source` rows with the given top-k clause.
    pub fn scan(source: impl Iterator<Item = Row<K>> + Send + 'static, spec: SortSpec) -> Self {
        Query {
            source: Box::new(ScanOp::new(source)),
            spec,
            config: TopKConfig::default(),
            algorithm: Algorithm::default(),
            plan: vec!["Scan".to_string()],
        }
    }

    /// Adds a WHERE-style predicate below the top-k.
    pub fn filter(mut self, predicate: impl FnMut(&Row<K>) -> bool + Send + 'static) -> Self {
        self.source = Box::new(FilterOp::new(self.source, predicate));
        self.plan.push("Filter".to_string());
        self
    }

    /// Overrides the operator configuration.
    pub fn config(mut self, config: TopKConfig) -> Self {
        self.config = config;
        self
    }

    /// Selects the top-k algorithm (default: the histogram operator).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Renders the plan tree, top operator last (EXPLAIN-style).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        let order =
            if self.spec.order == histok_types::SortOrder::Ascending { "ASC" } else { "DESC" };
        let top = format!(
            "TopK[{:?}] (limit {}, offset {}, {order})",
            self.algorithm, self.spec.limit, self.spec.offset
        );
        for (depth, node) in
            self.plan.iter().map(String::as_str).chain(std::iter::once(top.as_str())).enumerate()
        {
            for _ in 0..depth {
                out.push_str("  ");
            }
            out.push_str("-> ");
            out.push_str(node);
            out.push('\n');
        }
        out
    }

    /// The query's top-k clause (used by `TopKServer` admission to
    /// estimate the in-memory footprint).
    pub fn spec(&self) -> histok_types::SortSpec {
        self.spec
    }

    /// The operator configuration as currently built (the server reads the
    /// requested workspace and injects its shared scheduler/lease).
    pub fn config_ref(&self) -> &TopKConfig {
        &self.config
    }

    /// Mutable configuration access for the server's injections.
    pub(crate) fn config_mut(&mut self) -> &mut TopKConfig {
        &mut self.config
    }

    /// Whether this plan can spill at all (the in-memory algorithm never
    /// touches storage, whatever its estimated footprint).
    pub(crate) fn algorithm_kind(&self) -> Algorithm {
        self.algorithm
    }

    /// Plans and executes the query on `backend`, materializing the
    /// output.
    pub fn execute(self, backend: impl StorageBackend + 'static) -> Result<QueryResult<K>> {
        self.execute_shared(Arc::new(backend))
    }

    /// As [`Query::execute`] on a backend shared with other queries (the
    /// server path: N queries, one storage fleet).
    pub fn execute_shared(self, backend: Arc<dyn StorageBackend>) -> Result<QueryResult<K>> {
        self.execute_with_phase_hook(backend, |_| {})
    }

    /// Executes with a callback at the run-generation → output-merge phase
    /// boundary (after `open` returns, run generation and intermediate
    /// merges are complete and the sort workspace is flushed; only the
    /// streaming final merge remains). The server uses this to shrink the
    /// query's memory lease to a merge reserve while siblings are queued.
    pub(crate) fn execute_with_phase_hook(
        self,
        backend: Arc<dyn StorageBackend>,
        mut after_open: impl FnMut(&OperatorMetrics),
    ) -> Result<QueryResult<K>> {
        let topk: Box<dyn TopKOperator<K>> = match self.algorithm {
            Algorithm::Histogram => {
                Box::new(HistogramTopK::with_arc(self.spec, self.config, backend)?)
            }
            Algorithm::InMemory => Box::new(InMemoryTopK::new(self.spec)?),
            Algorithm::Traditional => {
                Box::new(TraditionalExternalTopK::with_config(self.spec, &self.config, backend)?)
            }
            Algorithm::Optimized => {
                Box::new(OptimizedExternalTopK::with_arc(self.spec, self.config, backend)?)
            }
            Algorithm::Parallel(threads) => {
                Box::new(ParallelTopK::with_arc(self.spec, self.config, backend, threads)?)
            }
        };
        let mut root = TopKExec::new(self.source, topk);
        let start = Instant::now();
        root.open()?;
        after_open(&root.metrics());
        let mut rows = Vec::new();
        while let Some(row) = root.next()? {
            rows.push(row);
        }
        let elapsed = start.elapsed();
        let algorithm = root.algorithm();
        // Close before snapshotting: the final-merge stream's reads and
        // timing are only booked once the output stream is released.
        root.close()?;
        let metrics = root.metrics();
        Ok(QueryResult { rows, metrics, elapsed, queued: Duration::ZERO, algorithm })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use histok_storage::MemoryBackend;
    use histok_types::F64Key;
    use histok_workload::Workload;

    fn cfg(budget: usize) -> TopKConfig {
        TopKConfig::builder().memory_budget(budget).block_bytes(1024).build().unwrap()
    }

    #[test]
    fn all_algorithms_agree_on_the_answer() {
        let w = Workload::uniform(20_000, 77);
        let expected = w.expected_top_k(500, true);
        let row_bytes = 64;
        for algo in [
            Algorithm::Histogram,
            Algorithm::InMemory,
            Algorithm::Traditional,
            Algorithm::Optimized,
            Algorithm::Parallel(3),
        ] {
            let result = Query::scan(w.rows(), SortSpec::ascending(500))
                .config(cfg(120 * row_bytes))
                .algorithm(algo)
                .execute(MemoryBackend::new())
                .unwrap();
            let got: Vec<f64> = result.rows.iter().map(|r| r.key.get()).collect();
            assert_eq!(got, expected, "{:?} diverged", algo);
            assert_eq!(result.metrics.rows_in, 20_000);
        }
    }

    #[test]
    fn histogram_spills_far_less_than_traditional() {
        let w = Workload::uniform(50_000, 78);
        let run = |algo| {
            Query::scan(w.rows(), SortSpec::ascending(1_000))
                .config(cfg(150 * 64))
                .algorithm(algo)
                .execute(MemoryBackend::new())
                .unwrap()
        };
        let hist = run(Algorithm::Histogram);
        let trad = run(Algorithm::Traditional);
        assert_eq!(
            hist.rows.iter().map(|r| r.key.get()).collect::<Vec<_>>(),
            trad.rows.iter().map(|r| r.key.get()).collect::<Vec<_>>()
        );
        assert!(
            hist.metrics.rows_spilled() * 3 < trad.metrics.rows_spilled(),
            "histogram {} vs traditional {}",
            hist.metrics.rows_spilled(),
            trad.metrics.rows_spilled()
        );
    }

    #[test]
    fn reported_metrics_include_the_final_merge() {
        // Regression: metrics used to be snapshotted at `open`, before the
        // output stream was drained, losing all merge-phase reads/timing.
        let w = Workload::uniform(50_000, 81);
        let result = Query::scan(w.rows(), SortSpec::ascending(1_000))
            .config(cfg(150 * 64))
            .algorithm(Algorithm::Histogram)
            .execute(MemoryBackend::new())
            .unwrap();
        assert!(result.metrics.spilled);
        assert!(result.metrics.io.rows_read > 0, "merge reads missing from metrics");
        assert!(result.metrics.io.read_ops > 0);
        assert!(
            result.metrics.phases.final_merge_ns > 0,
            "final-merge phase time missing from metrics"
        );
    }

    #[test]
    fn filter_below_topk() {
        let result: QueryResult<F64Key> =
            Query::scan(Workload::uniform(1_000, 79).rows(), SortSpec::ascending(5))
                .filter(|row| row.key.get() % 2.0 == 0.0)
                .execute(MemoryBackend::new())
                .unwrap();
        let keys: Vec<f64> = result.rows.iter().map(|r| r.key.get()).collect();
        assert_eq!(keys, vec![2.0, 4.0, 6.0, 8.0, 10.0]);
    }

    #[test]
    fn explain_renders_the_plan() {
        let q = Query::scan(Workload::uniform(10, 1).rows(), SortSpec::ascending(5))
            .filter(|_| true)
            .algorithm(Algorithm::Optimized);
        let plan = q.explain();
        assert!(plan.contains("-> Scan"), "{plan}");
        assert!(plan.contains("-> Filter"), "{plan}");
        assert!(plan.contains("TopK[Optimized] (limit 5, offset 0, ASC)"), "{plan}");
        // Deeper nodes are indented further.
        let scan_line = plan.lines().next().unwrap();
        let topk_line = plan.lines().last().unwrap();
        assert!(topk_line.len() > scan_line.len());
    }

    #[test]
    fn offset_pagination_through_query_api() {
        let w = Workload::uniform(5_000, 80);
        let page = |offset| {
            let result = Query::scan(w.rows(), SortSpec::ascending(10).with_offset(offset))
                .execute(MemoryBackend::new())
                .unwrap();
            result.rows.iter().map(|r| r.key.get()).collect::<Vec<_>>()
        };
        assert_eq!(page(0), (1..=10).map(f64::from).collect::<Vec<_>>());
        assert_eq!(page(10), (11..=20).map(f64::from).collect::<Vec<_>>());
        assert_eq!(page(4_995), (4_996..=5_000).map(f64::from).collect::<Vec<_>>());
    }
}
