//! Regression tests for background-I/O thread fan-out: a grouped query
//! over G groups and a many-query `TopKServer` fleet must both peak at
//! ≤ `io_threads` background threads, not `4 × G` / `4 × N`.
//!
//! `ThreadCensus` is process-global, so the two tests serialize through
//! one mutex and reset the peak while holding it. This file must not
//! gain tests that spawn I/O pools without taking the same lock.

use std::sync::{Arc, Mutex, OnceLock};

use histok_core::{GroupedTopK, TopKConfig};
use histok_exec::{Query, ServerConfig, TopKServer};
use histok_storage::{MemoryBackend, StorageBackend, ThreadCensus};
use histok_types::{Row, SortSpec};
use histok_workload::Workload;

fn census_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

#[test]
fn grouped_query_shares_one_pool_across_groups() {
    let _serial = census_lock().lock().unwrap();
    assert_eq!(ThreadCensus::current(), 0, "no stray pools before the test");
    ThreadCensus::reset_peak();

    const GROUPS: u32 = 8;
    const IO_THREADS: usize = 2;
    let row_bytes = histok_sort::row_footprint(&Row::key_only(0u64));
    // ~40 rows of budget per group with k = 100: every group spills, so
    // every group wants the background pipeline + readahead pool.
    let config = TopKConfig::builder()
        .memory_budget(40 * row_bytes)
        .block_bytes(1024)
        .io_threads(IO_THREADS)
        .spill_pipeline(true)
        .build()
        .unwrap();
    let mut op: GroupedTopK<u32, u64> =
        GroupedTopK::new(SortSpec::ascending(100), config, MemoryBackend::new()).unwrap();
    for g in 0..GROUPS {
        for k in 0..2_000u64 {
            op.push(g, Row::key_only(k)).unwrap();
        }
    }
    let out = op.finish().unwrap();
    assert_eq!(out.len(), GROUPS as usize);

    let peak = ThreadCensus::peak();
    assert!(
        peak <= IO_THREADS,
        "grouped query over {GROUPS} groups peaked at {peak} background \
         threads; the shared pool caps it at io_threads = {IO_THREADS}"
    );
    assert!(peak > 0, "spilling groups must actually use the pool");
    drop(op);
    assert_eq!(ThreadCensus::current(), 0, "pool threads exit with the operator");
}

#[test]
fn server_fleet_shares_one_pool_across_queries() {
    let _serial = census_lock().lock().unwrap();
    assert_eq!(ThreadCensus::current(), 0, "no stray pools before the test");
    ThreadCensus::reset_peak();

    const QUERIES: u64 = 64;
    const IO_THREADS: usize = 2;
    let server = Arc::new(TopKServer::new(ServerConfig {
        total_memory: 256 * 1024,
        io_threads: IO_THREADS,
        min_lease: 4 * 1024,
        small_query_bytes: 2 * 1024,
        row_bytes_hint: 64,
        folded_row_bytes_hint: 32,
    }));
    let backend: Arc<dyn StorageBackend> = Arc::new(MemoryBackend::new());
    let handles: Vec<_> = (0..QUERIES)
        .map(|i| {
            let server = server.clone();
            let backend = backend.clone();
            std::thread::spawn(move || {
                // Mix of in-memory (k = 5) and spilling (k = 300) queries.
                let k = if i % 2 == 0 { 5 } else { 300 };
                let config = TopKConfig::builder()
                    .memory_budget(16 * 1024)
                    .block_bytes(1024)
                    .spill_pipeline(true)
                    .build()
                    .unwrap();
                let query: Query<histok_types::F64Key> =
                    Query::scan(Workload::uniform(4_000, i).rows(), SortSpec::ascending(k))
                        .config(config);
                let result = server.execute(query, backend).unwrap();
                assert_eq!(result.rows.len(), k as usize);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let fleet = server.fleet_metrics();
    assert_eq!(fleet.queries, QUERIES);
    assert!(fleet.spilled_bytes > 0, "the k = 300 queries must spill");
    let peak = ThreadCensus::peak();
    assert!(
        peak <= IO_THREADS,
        "{QUERIES}-query fleet peaked at {peak} background threads; the \
         server's shared pool caps it at io_threads = {IO_THREADS}"
    );
    assert!(peak > 0, "spilling queries must actually use the pool");
    drop(server);
    assert_eq!(ThreadCensus::current(), 0, "pool threads exit with the server");
}
