//! Generators for the paper's analysis tables (Tables 1–5).
//!
//! Each function returns structured rows; the `histok-bench` binaries
//! format them exactly like the paper prints them and `EXPERIMENTS.md`
//! records paper-vs-measured values.

use crate::model::{simulate, ModelParams, ModelResult};

/// Table 1 — the §3.2.1 worked example: top 5,000 of 1,000,000 rows,
/// memory 1,000 rows, decile histograms. Returns the full per-run trace.
pub fn table1() -> ModelResult {
    simulate(ModelParams::paper_example(9))
}

/// One row of Table 2 (varying histogram size).
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Buckets per run.
    pub buckets: u32,
    /// The simulation outcome.
    pub result: ModelResult,
}

/// Table 2 — varying the histogram sizing policy over the §3.2.1 setup.
pub fn table2() -> Vec<Table2Row> {
    [0u32, 1, 5, 10, 20, 50, 100, 1000]
        .into_iter()
        .map(|buckets| Table2Row { buckets, result: simulate(ModelParams::paper_example(buckets)) })
        .collect()
}

/// One row of Table 3 (varying output size).
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Requested output rows.
    pub k: u64,
    /// Buckets per run used for this row.
    pub buckets: u32,
    /// The simulation outcome.
    pub result: ModelResult,
}

/// Table 3 — varying the output size; the `k = 50,000` experiment is run
/// thrice with 10, 100 and 1,000 buckets per run, as in the paper.
pub fn table3() -> Vec<Table3Row> {
    let mut rows = Vec::new();
    for k in [2_000u64, 5_000, 10_000, 20_000] {
        rows.push(Table3Row {
            k,
            buckets: 10,
            result: simulate(ModelParams {
                input_rows: 1_000_000,
                k,
                memory_rows: 1_000,
                buckets_per_run: 10,
            }),
        });
    }
    for buckets in [10u32, 100, 1000] {
        rows.push(Table3Row {
            k: 50_000,
            buckets,
            result: simulate(ModelParams {
                input_rows: 1_000_000,
                k: 50_000,
                memory_rows: 1_000,
                buckets_per_run: buckets,
            }),
        });
    }
    rows
}

/// One row of Table 4 / Table 5 (varying input size).
#[derive(Debug, Clone)]
pub struct Table45Row {
    /// Input rows.
    pub input: u64,
    /// The simulation outcome.
    pub result: ModelResult,
}

/// The input sizes of Tables 4 and 5.
pub const TABLE45_INPUTS: [u64; 15] = [
    6_000,
    7_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    2_000_000,
    5_000_000,
    10_000_000,
    20_000_000,
    50_000_000,
    100_000_000,
];

fn table45(buckets: u32) -> Vec<Table45Row> {
    TABLE45_INPUTS
        .into_iter()
        .map(|input| Table45Row {
            input,
            result: simulate(ModelParams {
                input_rows: input,
                k: 5_000,
                memory_rows: 1_000,
                buckets_per_run: buckets,
            }),
        })
        .collect()
}

/// Table 4 — varying input size, default histograms (10 buckets per run).
pub fn table4() -> Vec<Table45Row> {
    table45(10)
}

/// Table 5 — varying input size, minimal histograms (1 bucket per run:
/// the median key only).
pub fn table5() -> Vec<Table45Row> {
    table45(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Asserts `got` is within `pct` percent of `want`.
    fn close(got: u64, want: u64, pct: f64, what: &str) {
        let diff = (got as f64 - want as f64).abs() / want as f64 * 100.0;
        assert!(diff <= pct, "{what}: got {got}, paper says {want} ({diff:.1}% off)");
    }

    #[test]
    fn table2_tracks_the_paper() {
        let rows = table2();
        // Paper: (#buckets, runs, rows).
        let paper: [(u32, u64, u64); 8] = [
            (0, 1_000, 1_000_000),
            (1, 66, 62_781),
            (5, 44, 39_150),
            (10, 39, 34_077),
            (20, 37, 31_568),
            (50, 35, 30_156),
            (100, 35, 29_780),
            (1_000, 35, 29_258),
        ];
        for (row, (buckets, runs, spilled)) in rows.iter().zip(paper) {
            assert_eq!(row.buckets, buckets);
            close(row.result.runs, runs, 8.0, &format!("B={buckets} runs"));
            close(row.result.rows_spilled, spilled, 8.0, &format!("B={buckets} rows"));
        }
        // The monotone trend the paper highlights: more buckets, less I/O.
        for pair in rows.windows(2).skip(1) {
            assert!(pair[1].result.rows_spilled <= pair[0].result.rows_spilled);
        }
    }

    #[test]
    fn table3_tracks_the_paper() {
        let rows = table3();
        let paper: [(u64, u32, u64, u64); 7] = [
            (2_000, 10, 20, 14_858),
            (5_000, 10, 39, 34_077),
            (10_000, 10, 67, 62_072),
            (20_000, 10, 113, 109_016),
            (50_000, 10, 222, 218_539),
            (50_000, 100, 204, 200_161),
            (50_000, 1_000, 202, 198_436),
        ];
        for (row, (k, buckets, runs, spilled)) in rows.iter().zip(paper) {
            assert_eq!((row.k, row.buckets), (k, buckets));
            close(row.result.runs, runs, 10.0, &format!("k={k},B={buckets} runs"));
            close(row.result.rows_spilled, spilled, 10.0, &format!("k={k},B={buckets} rows"));
        }
    }

    #[test]
    fn table4_tracks_the_paper() {
        let rows = table4();
        let paper_runs_rows: [(u64, u64, u64); 15] = [
            (6_000, 6, 5_900),
            (7_000, 7, 6_699),
            (10_000, 9, 8_332),
            (20_000, 13, 11_840),
            (50_000, 19, 16_690),
            (100_000, 24, 20_627),
            (200_000, 28, 24_638),
            (500_000, 35, 30_008),
            (1_000_000, 39, 34_077),
            (2_000_000, 44, 38_188),
            (5_000_000, 50, 43_565),
            (10_000_000, 55, 47_683),
            (20_000_000, 60, 51_735),
            (50_000_000, 66, 57_182),
            (100_000_000, 71, 61_235),
        ];
        for (row, (input, runs, spilled)) in rows.iter().zip(paper_runs_rows) {
            assert_eq!(row.input, input);
            close(row.result.runs, runs, 12.0, &format!("N={input} runs"));
            close(row.result.rows_spilled, spilled, 12.0, &format!("N={input} rows"));
        }
    }

    #[test]
    fn table5_tracks_the_paper() {
        let rows = table5();
        let paper: [(u64, u64, u64); 6] = [
            (10_000, 10, 9_500),
            (100_000, 34, 32_250),
            (1_000_000, 66, 62_781),
            (10_000_000, 100, 94_999),
            (50_000_000, 123, 116_209),
            (100_000_000, 133, 125_708),
        ];
        let by_input = |input: u64| {
            rows.iter().find(|r| r.input == input).expect("input present").result.clone()
        };
        for (input, runs, spilled) in paper {
            let r = by_input(input);
            close(r.runs, runs, 12.0, &format!("N={input} runs"));
            close(r.rows_spilled, spilled, 12.0, &format!("N={input} rows"));
        }
        // "it filters out 99 7/8 % of the input" for the largest size.
        let big = by_input(100_000_000);
        assert!(big.rows_spilled as f64 / 1e8 < 0.0016);
    }

    #[test]
    fn table4_scalability_claims() {
        // "the second 50,000,000 input rows require only 5 additional runs
        // containing just over 4,000 additional rows".
        let rows = table4();
        let get = |input: u64| rows.iter().find(|r| r.input == input).unwrap().result.clone();
        let (a, b) = (get(50_000_000), get(100_000_000));
        assert!(b.runs - a.runs <= 8, "run growth {} too large", b.runs - a.runs);
        assert!(
            b.rows_spilled - a.rows_spilled < 8_000,
            "row growth {} too large",
            b.rows_spilled - a.rows_spilled
        );
        // Three orders of magnitude better than the traditional sort for
        // the largest input (§3.3).
        assert!(100_000_000 / b.rows_spilled >= 1_000);
    }
}
