//! The idealized execution model of §3.2.
//!
//! Assumptions, exactly as in the paper's analysis:
//!
//! * keys are uniformly distributed in `[0, 1]`; with a cutoff key `c`
//!   established, a fraction `c` of the remaining input survives the input
//!   filter, so filling `M` memory rows consumes `⌊M / c⌋` input rows;
//! * a full memory load holds keys idealized at the exact quantiles
//!   `c₀ · j / M` for `j = 1..=M`, where `c₀` is the cutoff when the run
//!   was filled;
//! * `B` buckets per run put boundaries every `w = max(1, ⌊M/(B+1)⌋)` rows
//!   (so `B = 9` tracks the deciles 10%…90% of Table 1, `B = 1` the median
//!   of Table 5), and the tail beyond the last boundary is *not* tracked;
//! * writing a run stops at the first key that the — continuously
//!   sharpening — cutoff filter eliminates ("the cutoff key may be
//!   sharpened and used to eliminate parts of the same, currently being
//!   written, run", §3.1.2).

use histok_core::{CutoffFilter, SizingPolicy};
use histok_sort::SpillObserver;
use histok_types::{F64Key, SortOrder};

/// Parameters of one analytical experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelParams {
    /// Total input rows (uniform keys in `[0, 1]`).
    pub input_rows: u64,
    /// Requested output rows.
    pub k: u64,
    /// Memory capacity in rows.
    pub memory_rows: u64,
    /// Histogram buckets per run (0 disables the histogram).
    pub buckets_per_run: u32,
}

impl ModelParams {
    /// The setup of the paper's running example (§3.2.1 / Table 1, with
    /// the Table 2 default of 10 buckets per run): top 5,000 of 1,000,000
    /// rows with memory for 1,000.
    pub fn paper_example(buckets_per_run: u32) -> Self {
        ModelParams { input_rows: 1_000_000, k: 5_000, memory_rows: 1_000, buckets_per_run }
    }
}

/// What happened during one simulated run.
#[derive(Debug, Clone)]
pub struct RunTrace {
    /// Input rows left before this run (Table 1, "Remaining Input Rows").
    pub remaining_before: u64,
    /// Cutoff key before the run (Table 1, "Cutoff Key").
    pub cutoff_before: Option<f64>,
    /// Input rows consumed to fill memory.
    pub consumed: u64,
    /// Rows that survived the input filter into memory.
    pub filled: u64,
    /// Rows actually written to the run (≤ `filled`; the rest were
    /// eliminated mid-run by the sharpening cutoff).
    pub written: u64,
    /// Key at each decile (10%…90%) of the *memory load*, `None` where the
    /// row was eliminated before being written — Table 1's quantile
    /// columns with their empty cells.
    pub deciles: [Option<f64>; 9],
}

/// The outcome of one analytical experiment.
#[derive(Debug, Clone)]
pub struct ModelResult {
    /// Runs written (the paper's "Runs" column).
    pub runs: u64,
    /// Total rows written to secondary storage (the "Rows" column).
    pub rows_spilled: u64,
    /// Cutoff key after the last run (the "Cutoff" column).
    pub final_cutoff: Option<f64>,
    /// The ideal cutoff `k / N` — the true kth key of a uniform input.
    pub ideal_cutoff: f64,
    /// `final_cutoff / ideal_cutoff` (the "Ratio" column; smaller is
    /// better, 1.0 is perfect).
    pub ratio: Option<f64>,
    /// Per-run trace (Table 1's rows).
    pub trace: Vec<RunTrace>,
}

impl ModelResult {
    /// `ratio` rounded the way the paper prints it (2 decimals).
    pub fn ratio_rounded(&self) -> Option<f64> {
        self.ratio.map(|r| (r * 100.0).round() / 100.0)
    }
}

/// An analytic key distribution: a strictly increasing quantile function
/// `Q : [0,1] → keys` and its inverse CDF `F = Q⁻¹`.
///
/// The algorithm is comparison-based, so its *counts* (runs, rows spilled)
/// depend only on ranks — simulating under any strictly monotone `Q` must
/// reproduce the uniform counts exactly, with every cutoff key mapped
/// through `Q`. [`simulate_keyed`] lets tests prove that property
/// analytically — the reason the paper's Figure 3 curves coincide across
/// uniform, Zipf and lognormal data.
pub struct KeyModel {
    /// Quantile function: fraction of the key population → key value.
    pub quantile: Box<dyn Fn(f64) -> f64>,
    /// CDF: key value → fraction of the population at or below it.
    pub cdf: Box<dyn Fn(f64) -> f64>,
}

impl KeyModel {
    /// Uniform keys on `[0, 1]` — the paper's §3.2 assumption.
    pub fn uniform() -> Self {
        KeyModel { quantile: Box::new(|u| u), cdf: Box::new(|k| k) }
    }

    /// Exponential(λ) keys: `Q(u) = −ln(1−u)/λ`.
    pub fn exponential(rate: f64) -> Self {
        assert!(rate > 0.0);
        KeyModel {
            quantile: Box::new(move |u| -(1.0 - u).max(f64::MIN_POSITIVE).ln() / rate),
            cdf: Box::new(move |k| 1.0 - (-rate * k).exp()),
        }
    }

    /// Power-law keys on `[1, ∞)`: `Q(u) = (1−u)^(−1/α)` — a Pareto shape
    /// resembling the paper's `fal` generator (descending order flipped to
    /// ascending by taking reciprocals is equivalent for counts).
    pub fn pareto(alpha: f64) -> Self {
        assert!(alpha > 0.0);
        KeyModel {
            quantile: Box::new(move |u| (1.0 - u).max(f64::MIN_POSITIVE).powf(-1.0 / alpha)),
            cdf: Box::new(move |k| if k <= 1.0 { 0.0 } else { 1.0 - k.powf(-alpha) }),
        }
    }
}

/// Runs the idealized simulation with uniform `[0, 1]` keys (the paper's
/// §3.2 setup).
pub fn simulate(params: ModelParams) -> ModelResult {
    simulate_keyed(params, &KeyModel::uniform())
}

/// Runs the idealized simulation under an arbitrary analytic key
/// distribution (see [`KeyModel`]).
pub fn simulate_keyed(params: ModelParams, model: &KeyModel) -> ModelResult {
    assert!(params.k > 0, "k must be positive");
    assert!(params.memory_rows > 0, "memory must hold at least one row");
    let sizing = if params.buckets_per_run == 0 {
        SizingPolicy::Disabled
    } else {
        SizingPolicy::TargetBuckets(params.buckets_per_run)
    };
    // Tail buckets off: the paper's model tracks only the B quantile
    // boundaries of each run (Table 1 tracks 9 deciles of 1000-row runs).
    let mut filter: CutoffFilter<F64Key> =
        CutoffFilter::with_policy(params.k, SortOrder::Ascending, sizing).with_tail_buckets(false);

    let mut remaining = params.input_rows;
    let mut trace = Vec::new();
    let mut runs = 0u64;
    let mut rows_spilled = 0u64;

    while remaining > 0 {
        let cutoff_before = filter.cutoff().map(|c| c.get());
        // Survival fraction under the cutoff: F(cutoff), 1.0 before one
        // is established.
        let f0 = cutoff_before.map_or(1.0, |c| (model.cdf)(c));
        debug_assert!(f0 > 0.0);
        // Fill memory: with survival fraction f0, M rows require M/f0 input.
        let want = (params.memory_rows as f64 / f0).floor() as u64;
        let (consumed, filled) = if want <= remaining {
            (want.max(1), params.memory_rows)
        } else {
            // Final partial load: the whole remainder is consumed; the
            // expected survivors are remaining * f0.
            (remaining, ((remaining as f64) * f0).floor() as u64)
        };
        let remaining_before = remaining;
        remaining -= consumed;
        if filled == 0 {
            trace.push(RunTrace {
                remaining_before,
                cutoff_before,
                consumed,
                filled: 0,
                written: 0,
                deciles: [None; 9],
            });
            continue;
        }

        // Write the sorted memory load, building the run's histogram and
        // stopping at the first eliminated key. The j-th of the `filled`
        // surviving rows sits at population quantile f0·j/filled.
        filter.run_started(filled);
        let mut written = 0u64;
        for j in 1..=filled {
            let key = F64Key((model.quantile)(f0 * j as f64 / filled as f64));
            if filter.should_eliminate(&key.clone()) {
                break;
            }
            filter.row_spilled(&key);
            written += 1;
        }
        filter.run_finished();

        let mut deciles = [None; 9];
        for (i, slot) in deciles.iter_mut().enumerate() {
            let row = (filled * (i as u64 + 1)) / 10;
            if row >= 1 && row <= written {
                *slot = Some((model.quantile)(f0 * row as f64 / filled as f64));
            }
        }
        trace.push(RunTrace {
            remaining_before,
            cutoff_before,
            consumed,
            filled,
            written,
            deciles,
        });
        if written > 0 {
            runs += 1;
            rows_spilled += written;
        }
    }

    let final_cutoff = filter.cutoff().map(|c| c.get());
    let ideal_cutoff = (model.quantile)(params.k as f64 / params.input_rows as f64);
    ModelResult {
        runs,
        rows_spilled,
        final_cutoff,
        ideal_cutoff,
        ratio: final_cutoff.map(|c| c / ideal_cutoff),
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_trace_runs_1_to_8() {
        // §3.2.1, Table 1 with decile histograms (B = 9).
        let r = simulate(ModelParams { buckets_per_run: 9, ..ModelParams::paper_example(9) });
        let t = &r.trace;
        // Runs 1-5: full, unfiltered, cutoff not yet established.
        for run in &t[..5] {
            assert_eq!(run.cutoff_before, None);
            assert_eq!(run.consumed, 1000);
            assert_eq!(run.written, 1000);
        }
        // Run 6: cutoff 0.9 is established *during* the run — its last 10%
        // is eliminated ("we can eliminate rows with keys above 0.9 in run
        // 6").
        assert_eq!(t[5].cutoff_before, None);
        assert_eq!(t[5].written, 900);
        // Run 7: cutoff 0.9 before; consumes 1111; ends with key 0.72.
        assert_eq!(t[6].remaining_before, 994_000);
        assert_eq!(t[6].cutoff_before, Some(0.9));
        assert_eq!(t[6].consumed, 1111);
        assert_eq!(t[6].written, 800);
        assert!((t[6].deciles[0].unwrap() - 0.09).abs() < 1e-9);
        assert!((t[6].deciles[7].unwrap() - 0.72).abs() < 1e-9);
        assert_eq!(t[6].deciles[8], None); // 90% decile eliminated
                                           // Run 8: cutoff 0.72 before; consumes 1388; ends just past 0.6.
        assert_eq!(t[7].remaining_before, 992_889);
        assert!((t[7].cutoff_before.unwrap() - 0.72).abs() < 1e-9);
        assert_eq!(t[7].consumed, 1388);
        assert!((t[7].deciles[7].unwrap() - 0.576).abs() < 1e-9);
        assert_eq!(t[7].deciles[8], None);
    }

    #[test]
    fn paper_example_totals_with_deciles() {
        // "only 39 runs are required containing less than 35,000 rows".
        let r = simulate(ModelParams::paper_example(9));
        assert!(
            (37..=41).contains(&r.runs),
            "expected ~39 runs, got {} ({} rows)",
            r.runs,
            r.rows_spilled
        );
        assert!(r.rows_spilled < 35_000, "expected <35k rows, got {}", r.rows_spilled);
    }

    #[test]
    fn nineteen_buckets_improves_slightly() {
        // "with 19 buckets per run ... 37 runs are required rather than 39
        // and the final cutoff key is 0.006024. The total size of the 37
        // runs is less than 32,000 rows."
        let r = simulate(ModelParams::paper_example(19));
        assert!((35..=39).contains(&r.runs), "got {} runs", r.runs);
        assert!(r.rows_spilled < 32_500, "got {} rows", r.rows_spilled);
    }

    #[test]
    fn median_only_histogram_still_beats_full_sort_by_15x() {
        // "The opposite extreme case tracks only the median key value of
        // each run, which requires 66 runs containing less than 63,000
        // rows ... still 15× less than the traditional external merge
        // sort."
        let r = simulate(ModelParams::paper_example(1));
        assert!((62..=70).contains(&r.runs), "got {} runs", r.runs);
        assert!(r.rows_spilled < 64_000, "got {} rows", r.rows_spilled);
        assert!(1_000_000 / r.rows_spilled >= 15);
    }

    #[test]
    fn no_histogram_spills_everything() {
        // Table 2, first row: 0 buckets → 1,000 runs, 1,000,000 rows.
        let r = simulate(ModelParams::paper_example(0));
        assert_eq!(r.runs, 1_000);
        assert_eq!(r.rows_spilled, 1_000_000);
        assert_eq!(r.final_cutoff, None);
    }

    #[test]
    fn per_key_histogram_is_the_floor() {
        // Table 2, last row: 1,000 buckets → 35 runs, 29,258 rows, ratio 1.
        let r = simulate(ModelParams::paper_example(1000));
        assert!((33..=37).contains(&r.runs), "got {} runs", r.runs);
        assert!((28_000..31_000).contains(&r.rows_spilled), "got {} rows", r.rows_spilled);
        assert!(r.ratio.unwrap() < 1.05);
    }

    #[test]
    fn cutoff_never_beats_ideal() {
        // The cutoff must stay at or above the true kth key, or rows of
        // the answer would have been eliminated.
        for buckets in [1, 5, 10, 50, 1000] {
            let r = simulate(ModelParams::paper_example(buckets));
            assert!(
                r.ratio.unwrap() >= 0.999,
                "B={buckets}: ratio {} < 1 would mean lost output rows",
                r.ratio.unwrap()
            );
        }
    }

    #[test]
    fn input_smaller_than_k_never_establishes_cutoff() {
        let r = simulate(ModelParams {
            input_rows: 3_000,
            k: 5_000,
            memory_rows: 1_000,
            buckets_per_run: 10,
        });
        assert_eq!(r.final_cutoff, None);
        assert_eq!(r.rows_spilled, 3_000);
    }

    #[test]
    fn counts_are_distribution_free() {
        // Comparison-based algorithm: runs and rows spilled depend only on
        // ranks, so any strictly monotone quantile function yields the
        // exact same counts as the uniform model — the analytic form of
        // the paper's Figure 3 observation.
        let params = ModelParams::paper_example(10);
        let uniform = simulate(params);
        for model in [KeyModel::exponential(2.5), KeyModel::pareto(1.25)] {
            let skewed = simulate_keyed(params, &model);
            // Identical up to f64 round-trips through Q and F, which can
            // shift a single ⌊M/F(c)⌋ by one row.
            assert!(skewed.runs.abs_diff(uniform.runs) <= 1);
            assert!(
                skewed.rows_spilled.abs_diff(uniform.rows_spilled) <= uniform.rows_spilled / 500,
                "{} vs {}",
                skewed.rows_spilled,
                uniform.rows_spilled
            );
        }
    }

    #[test]
    fn cutoffs_map_through_the_quantile_function() {
        let params = ModelParams::paper_example(10);
        let uniform = simulate(params);
        let rate = 3.0;
        let exp = simulate_keyed(params, &KeyModel::exponential(rate));
        let (u_cut, e_cut) = (uniform.final_cutoff.unwrap(), exp.final_cutoff.unwrap());
        // Q_exp(u_cut) == e_cut.
        let mapped = -(1.0f64 - u_cut).ln() / rate;
        assert!((mapped - e_cut).abs() < 1e-9, "expected Q(cutoff) {mapped}, got {e_cut}");
        // And the ratio column stays meaningful (>= 1 up to fp noise).
        assert!(exp.ratio.unwrap() >= 0.999);
    }

    #[test]
    fn key_models_are_self_consistent() {
        for model in [KeyModel::uniform(), KeyModel::exponential(0.7), KeyModel::pareto(2.0)] {
            for u in [0.01, 0.1, 0.5, 0.9, 0.99] {
                let k = (model.quantile)(u);
                let back = (model.cdf)(k);
                assert!((back - u).abs() < 1e-9, "F(Q({u})) = {back}");
            }
            // Monotone.
            let a = (model.quantile)(0.2);
            let b = (model.quantile)(0.8);
            assert!(a < b);
        }
    }

    #[test]
    fn trace_conserves_input() {
        let r = simulate(ModelParams::paper_example(10));
        let consumed: u64 = r.trace.iter().map(|t| t.consumed).sum();
        assert_eq!(consumed, 1_000_000);
        let written: u64 = r.trace.iter().map(|t| t.written).sum();
        assert_eq!(written, r.rows_spilled);
    }
}
