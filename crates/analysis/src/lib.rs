//! # histok-analysis
//!
//! The paper's §3.2 analytical model: an idealized, deterministic
//! simulation of the histogram top-k algorithm over perfectly uniform
//! `[0, 1]` keys, using fill-sort-spill run generation ("for simplicity,
//! in this section, to create a run we fill our available memory with
//! input rows, sort and write them to disk").
//!
//! The simulator drives the *real* [`histok_core::CutoffFilter`] with
//! idealized quantile keys, so the arithmetic of Tables 1–5 exercises the
//! production data structure rather than a reimplementation.
//!
//! [`tables`] regenerates each of the paper's analysis tables; the
//! `histok-bench` binaries print them in the paper's format.

#![deny(missing_docs)]

pub mod model;
pub mod tables;

pub use model::{simulate, simulate_keyed, KeyModel, ModelParams, ModelResult, RunTrace};
pub use tables::{table1, table2, table3, table4, table5, Table2Row, Table3Row, Table45Row};
